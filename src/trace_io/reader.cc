#include "trace_io/reader.hh"

#include "isa/registers.hh"
#include "support/checksum.hh"
#include "support/logging.hh"
#include "support/prof.hh"
#include "support/varint.hh"

namespace irep::trace_io
{

TraceReader::TraceReader(std::string path) : path_(std::move(path))
{
    file_ = std::fopen(path_.c_str(), "rb");
    fatalIf(!file_, "cannot open trace '", path_, "'");

    readRaw(&header_, sizeof(header_), "header");
    fatalIf(header_.magic != fileMagic,
            "'", path_, "' is not an irep trace file");
    fatalIf(header_.version < minReadVersion ||
                header_.version > formatVersion,
            "trace '", path_, "' has format version ", header_.version,
            ", this build reads versions ", minReadVersion, "-",
            formatVersion, " — re-record it");
    fatalIf(crc32(&header_, sizeof(header_) - sizeof(header_.crc)) !=
                header_.crc,
            "trace '", path_, "' header checksum mismatch");

    validateShape();
    fatalIf(std::fseek(file_, long(sizeof(TraceHeader)), SEEK_SET) != 0,
            "seek in trace '", path_, "' failed");
}

TraceReader::~TraceReader()
{
    if (file_)
        std::fclose(file_);
}

void
TraceReader::corrupt(const std::string &what) const
{
    fatal("trace '", path_, "' ", what,
          " — the file is corrupt or truncated; delete it and "
          "re-record");
}

void
TraceReader::readRaw(void *data, size_t size, const char *what)
{
    if (std::fread(data, 1, size, file_) != size)
        corrupt(std::string("ends inside its ") + what);
}

/**
 * Walk every frame once (seeking over payloads) and insist on a
 * well-formed footer whose counts match: a file cut off mid-write —
 * kill -9 during `irep record`, a full disk, a crashed bench job —
 * fails here, before any record is dispatched.
 */
void
TraceReader::validateShape()
{
    const uint32_t frame_magic =
        header_.version == 1 ? blockMagic : blockMagic2;
    uint32_t blocks = 0;
    uint64_t instr_records = 0;
    for (;;) {
        uint32_t magic;
        readRaw(&magic, sizeof(magic), "frame header");
        if (magic == frame_magic && header_.version == 1) {
            BlockFrame frame;
            frame.magic = magic;
            readRaw(reinterpret_cast<char *>(&frame) + sizeof(magic),
                    sizeof(frame) - sizeof(magic), "block frame");
            fatalIf(std::fseek(file_, long(frame.payloadBytes),
                               SEEK_CUR) != 0,
                    "seek in trace '", path_, "' failed");
            // A seek past EOF succeeds; the next frame read catches it.
            ++blocks;
            instr_records += frame.instrRecords;
            totalRawBytes_ += frame.payloadBytes;
            totalStoredBytes_ += frame.payloadBytes;
            continue;
        }
        if (magic == frame_magic) {
            BlockFrame2 frame;
            frame.magic = magic;
            readRaw(reinterpret_cast<char *>(&frame) + sizeof(magic),
                    sizeof(frame) - sizeof(magic), "block frame");
            if (frame.reserved0 != 0)
                corrupt("has a block frame with reserved bits set");
            if (frame.rawBytes == 0 || frame.storedBytes == 0 ||
                frame.rawBytes > blockRawCap ||
                frame.storedBytes > frame.rawBytes)
                corrupt("declares an impossible block size");
            if (frame.codec > uint32_t(Codec::Zstd))
                corrupt("names an unknown block codec");
            if (frame.codec == uint32_t(Codec::Store) &&
                frame.storedBytes != frame.rawBytes)
                corrupt("declares an impossible block size");
            fatalIf(!codecAvailable(Codec(frame.codec)),
                    "trace '", path_, "' uses the ",
                    codecName(Codec(frame.codec)),
                    " codec, which this build lacks — re-record it "
                    "or rebuild with that codec enabled");
            fatalIf(std::fseek(file_, long(frame.storedBytes),
                               SEEK_CUR) != 0,
                    "seek in trace '", path_, "' failed");
            ++blocks;
            instr_records += frame.instrRecords;
            totalRawBytes_ += frame.rawBytes;
            totalStoredBytes_ += frame.storedBytes;
            continue;
        }
        if (magic != footerMagic)
            corrupt("contains an unrecognized frame");
        footer_.magic = magic;
        readRaw(reinterpret_cast<char *>(&footer_) + sizeof(magic),
                sizeof(footer_) - sizeof(magic), "footer");
        break;
    }
    if (crc32(&footer_, sizeof(footer_) - sizeof(footer_.crc)) !=
        footer_.crc)
        corrupt("footer checksum mismatch");
    if (footer_.blockCount != blocks ||
        footer_.instrRecords != instr_records)
        corrupt("footer does not match its blocks");
    char extra;
    if (std::fread(&extra, 1, 1, file_) != 0)
        corrupt("has data after its footer");
}

void
TraceReader::bind(sim::Machine &machine, const std::string &input)
{
    const assem::Program &program = machine.program();
    fatalIf(header_.textBase != assem::Layout::textBase ||
                header_.textWords != machine.numStaticInstructions() ||
                header_.entry != program.entry ||
                header_.identity != identityHash(program, input),
            "trace '", path_, "' was recorded for a different "
            "program or input (identity mismatch)");

    decoded_.clear();
    decoded_.reserve(program.text.size());
    destRegs_.clear();
    destRegs_.reserve(program.text.size());
    for (uint32_t word : program.text) {
        decoded_.push_back(isa::decode(word));
        const isa::Instruction &inst = decoded_.back();
        destRegs_.push_back(
            int8_t(inst.valid() ? inst.destReg() : -1));
    }
    machine_ = &machine;
}

bool
TraceReader::loadNextBlock()
{
    if (blockInstrLeft_ != 0)
        corrupt("block ended before its declared record count");
    if (sawFooter_)
        return false;
    uint32_t magic;
    readRaw(&magic, sizeof(magic), "frame header");
    if (magic == footerMagic) {
        // Shape and counts were validated at open; just stop.
        sawFooter_ = true;
        return false;
    }
    if (header_.version == 1) {
        if (magic != blockMagic)
            corrupt("contains an unrecognized frame");
        BlockFrame frame;
        frame.magic = magic;
        readRaw(reinterpret_cast<char *>(&frame) + sizeof(magic),
                sizeof(frame) - sizeof(magic), "block frame");
        block_.resize(frame.payloadBytes);
        readRaw(block_.data(), block_.size(), "block payload");
        if (crc32(block_.data(), block_.size()) != frame.payloadCrc)
            corrupt("block payload checksum mismatch");
        blockInstrLeft_ = frame.instrRecords;
    } else {
        if (magic != blockMagic2)
            corrupt("contains an unrecognized frame");
        BlockFrame2 frame;
        frame.magic = magic;
        readRaw(reinterpret_cast<char *>(&frame) + sizeof(magic),
                sizeof(frame) - sizeof(magic), "block frame");
        // validateShape() vetted the declared sizes and codec at
        // open; re-bound them anyway so a file swapped underneath us
        // cannot balloon the buffers.
        if (frame.rawBytes > blockRawCap ||
            frame.storedBytes > frame.rawBytes ||
            frame.codec > uint32_t(Codec::Zstd))
            corrupt("declares an impossible block size");
        if (Codec(frame.codec) == Codec::Store) {
            block_.resize(frame.rawBytes);
            readRaw(block_.data(), block_.size(), "block payload");
            if (crc32(block_.data(), block_.size()) !=
                frame.storedCrc)
                corrupt("block payload checksum mismatch");
        } else {
            stored_.resize(frame.storedBytes);
            readRaw(stored_.data(), stored_.size(), "block payload");
            if (crc32(stored_.data(), stored_.size()) !=
                frame.storedCrc)
                corrupt("block payload checksum mismatch");
            block_.resize(frame.rawBytes);
            if (!codecDecompress(
                    Codec(frame.codec),
                    reinterpret_cast<const uint8_t *>(stored_.data()),
                    stored_.size(),
                    reinterpret_cast<uint8_t *>(block_.data()),
                    block_.size()))
                corrupt("block payload does not decompress");
        }
        if (crc32(block_.data(), block_.size()) != frame.rawCrc)
            corrupt("block payload checksum mismatch after decoding");
        blockInstrLeft_ = frame.instrRecords;
    }
    cursor_ = reinterpret_cast<const uint8_t *>(block_.data());
    blockEnd_ = cursor_ + block_.size();
    ++blocksLoaded_;
    payloadBytes_ += block_.size();
    return true;
}

bool
TraceReader::atEnd() const
{
    return sawFooter_ && cursor_ == blockEnd_;
}

uint64_t
TraceReader::replay(sim::Observer &observer, uint64_t max_instructions)
{
    if (!prof::enabled())
        return replayImpl(observer, max_instructions);

    // One span per phase-sized replay call, attributing decode cost
    // and volume (records, blocks, payload bytes) to trace_io.
    const uint64_t start_ns = prof::nowNs();
    const uint64_t seq0 = seq_;
    const uint64_t sys0 = syscallsDispatched_;
    const uint32_t blocks0 = blocksLoaded_;
    const uint64_t bytes0 = payloadBytes_;
    const uint64_t done = replayImpl(observer, max_instructions);
    const double records = double(seq_ - seq0);
    const double blocks = double(blocksLoaded_ - blocks0);
    const double bytes = double(payloadBytes_ - bytes0);
    prof::counterAdd("trace_io/records", records);
    prof::counterAdd("trace_io/syscalls",
                     double(syscallsDispatched_ - sys0));
    prof::counterAdd("trace_io/blocks", blocks);
    prof::counterAdd("trace_io/payload_bytes", bytes);
    prof::recordSpan("replay", "trace_io", start_ns,
                     prof::nowNs() - start_ns,
                     {{"records", records},
                      {"blocks", blocks},
                      {"payload_bytes", bytes}});
    return done;
}

uint64_t
TraceReader::replayImpl(sim::Observer &observer,
                        uint64_t max_instructions)
{
    panicIf(!machine_, "TraceReader::replay() before bind()");
    const uint32_t text_words = header_.textWords;
    const uint32_t text_base = header_.textBase;
    const isa::Instruction *const decoded = decoded_.data();
    const int8_t *const dest_regs = destRegs_.data();
    uint64_t done = 0;
    while (done < max_instructions) {
        while (cursor_ == blockEnd_) {
            if (!loadNextBlock())
                return done;
        }

        // Decode state lives in locals across the block: the virtual
        // observer call would otherwise force every member through
        // memory on each record, which dominates replay throughput.
        const uint8_t *p = cursor_;
        const uint8_t *const end = blockEnd_;
        uint32_t prev_index = prevStaticIndex_;
        uint32_t prev_mem = prevMemAddr_;
        uint32_t instr_left = blockInstrLeft_;
        uint64_t seq = seq_;

        while (p != end && done < max_instructions) {
            const uint8_t flags = *p++;

            if ((flags & flagSrcCountMask) == syscallRecordTag) {
                if (flags != syscallRecordTag)
                    corrupt("contains a malformed syscall record");
                sim::SyscallRecord sys;
                sys.num = sim::Syscall(varint::get(p, end));
                sys.arg0 = uint32_t(varint::get(p, end));
                sys.arg1 = uint32_t(varint::get(p, end));
                sys.result = uint32_t(varint::get(p, end));
                sys.writtenAddr = uint32_t(varint::get(p, end));
                sys.writtenLen = uint32_t(varint::get(p, end));
                observer.onSyscall(sys);
                ++syscallsDispatched_;
                continue;
            }

            if (flags & flagReservedMask)
                corrupt("contains a record with reserved flags set");
            if (instr_left == 0)
                corrupt("block holds more records than it declares");
            --instr_left;

            sim::InstrRecord rec;
            rec.seq = seq;

            const int64_t index_delta = varint::getSigned(p, end);
            const uint32_t index =
                uint32_t(int64_t(prev_index) + index_delta);
            if (index >= text_words)
                corrupt(
                    "references a static instruction out of range");
            prev_index = index;
            rec.staticIndex = index;
            rec.pc = text_base + index * 4;
            rec.inst = &decoded[index];

            rec.numSrcRegs = flags & flagSrcCountMask;
            for (int i = 0; i < rec.numSrcRegs; ++i)
                rec.srcVal[i] = uint32_t(varint::get(p, end));

            if (flags & flagMemAccess) {
                rec.isMemAccess = true;
                const int64_t mem_delta = varint::getSigned(p, end);
                prev_mem = uint32_t(int64_t(prev_mem) + mem_delta);
                rec.memAddr = prev_mem;
            }

            if (flags & flagWritesReg) {
                rec.writesReg = true;
                const int8_t static_dest = dest_regs[index];
                if (static_dest >= 0) {
                    rec.destReg = uint8_t(static_dest);
                } else {
                    // Dynamic destination: the SYSCALL result
                    // register.
                    if (p == end)
                        corrupt("ends inside a record");
                    rec.destReg = *p++;
                    if (rec.destReg >= 32)
                        corrupt(
                            "names an invalid destination register");
                }
            }

            rec.result = varint::get(p, end);

            rec.nextPc = rec.pc + 4;
            if (flags & flagControl) {
                rec.nextPc = uint32_t(int64_t(rec.pc + 4) +
                                      varint::getSigned(p, end));
            }

            if (flags & flagCallRegs) {
                // Restore the registers the function-level analysis
                // samples at call retires; nothing else reads live
                // machine state.
                machine_->setReg(isa::regSP,
                                 uint32_t(varint::get(p, end)));
                for (unsigned i = 0; i < 4; ++i) {
                    machine_->setReg(isa::regA0 + i,
                                     uint32_t(varint::get(p, end)));
                }
            }

            ++seq;
            ++done;
            observer.onRetire(rec);
        }

        cursor_ = p;
        prevStaticIndex_ = prev_index;
        prevMemAddr_ = prev_mem;
        blockInstrLeft_ = instr_left;
        seq_ = seq;
    }
    return done;
}

} // namespace irep::trace_io
