/**
 * @file
 * A two-pass MIPS assembler producing a loadable Program.
 *
 * Supported syntax (one statement per line, '#' comments):
 *   - labels:        `name:` (several may share a line with a statement)
 *   - sections:      `.text`, `.data`
 *   - data:          `.word`, `.half`, `.byte`, `.ascii`, `.asciiz`,
 *                    `.space N`, `.align P` (pad to 2^P)
 *   - metadata:      `.ent name[, nargs]` / `.end [name]` function
 *                    bounds + register-argument count, `.entry name`
 *                    program entry point, `.globl` (accepted, ignored)
 *   - instructions:  every Op in isa/instruction.hh, plus the pseudo
 *                    instructions li, la, move, nop, b, beqz, bnez,
 *                    blt/bgt/ble/bge (+u forms), mul, div (3-operand),
 *                    rem, neg, not, seq, sne, sgt, sge, sle
 *   - relocations:   `%hi(sym)` (adjusted high part, pairs with a
 *                    signed `%lo(sym)` offset), branch and jump labels
 *
 * All errors raise FatalError with the offending line number.
 */

#ifndef IREP_ASM_ASSEMBLER_HH
#define IREP_ASM_ASSEMBLER_HH

#include <string>

#include "asm/program.hh"

namespace irep::assem
{

/**
 * Assemble a complete translation unit into a Program.
 *
 * @param source Assembly source text.
 * @return The assembled program image.
 */
Program assemble(const std::string &source);

} // namespace irep::assem

#endif // IREP_ASM_ASSEMBLER_HH
