/**
 * @file
 * The loadable program image produced by the assembler: text and data
 * sections, a symbol table, and per-function metadata (entry address,
 * size, argument count) consumed by the function-level analysis.
 */

#ifndef IREP_ASM_PROGRAM_HH
#define IREP_ASM_PROGRAM_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace irep::assem
{

/** Conventional memory layout constants. */
struct Layout
{
    static constexpr uint32_t textBase = 0x00400000;
    static constexpr uint32_t dataBase = 0x10000000;
    /** Value loaded into $gp at startup (MIPS o32 convention:
     *  data base + 0x8000 so 16-bit signed offsets span 64 KiB). */
    static constexpr uint32_t gpValue = dataBase + 0x8000;
    static constexpr uint32_t stackTop = 0x7ffff000;
    /** Addresses at or above this belong to the stack region; the heap
     *  break may never grow into it. */
    static constexpr uint32_t stackRegionBase = 0x70000000;
};

/**
 * Metadata for one function, emitted by `.ent name, nargs` / `.end`.
 * The analyses use the address range to attribute instructions to
 * functions and the argument count to sample argument registers.
 */
struct FunctionInfo
{
    std::string name;
    uint32_t addr = 0;      //!< first instruction address
    uint32_t size = 0;      //!< size in bytes
    uint8_t numArgs = 0;    //!< declared register arguments (0..4)

    bool
    contains(uint32_t pc) const
    {
        return pc >= addr && pc < addr + size;
    }
};

/** An assembled, loadable program. */
class Program
{
  public:
    std::vector<uint32_t> text;     //!< instruction words at textBase
    std::vector<uint8_t> data;      //!< data section at dataBase
    uint32_t entry = Layout::textBase;

    std::unordered_map<std::string, uint32_t> symbols;
    std::vector<FunctionInfo> functions;    //!< sorted by address

    /** Size of the text section in bytes. */
    uint32_t textBytes() const { return uint32_t(text.size()) * 4; }

    /** First address past the data section (initial heap break). */
    uint32_t
    heapStart() const
    {
        return (Layout::dataBase + uint32_t(data.size()) + 0xfffu) &
               ~0xfffu;
    }

    /**
     * The function covering @p pc, or nullptr if the address is not
     * inside any `.ent`-annotated function.
     */
    const FunctionInfo *functionAt(uint32_t pc) const;

    /** Look up a symbol; fatal() if missing. */
    uint32_t symbol(const std::string &name) const;
};

} // namespace irep::assem

#endif // IREP_ASM_PROGRAM_HH
