#include "asm/program.hh"

#include <algorithm>

#include "support/logging.hh"

namespace irep::assem
{

const FunctionInfo *
Program::functionAt(uint32_t pc) const
{
    // functions is sorted by address; binary search for the last
    // function starting at or before pc.
    auto it = std::upper_bound(
        functions.begin(), functions.end(), pc,
        [](uint32_t v, const FunctionInfo &f) { return v < f.addr; });
    if (it == functions.begin())
        return nullptr;
    --it;
    return it->contains(pc) ? &*it : nullptr;
}

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    fatalIf(it == symbols.end(), "undefined symbol: ", name);
    return it->second;
}

} // namespace irep::assem
