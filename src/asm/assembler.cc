#include "asm/assembler.hh"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <optional>
#include <sstream>
#include <string_view>
#include <vector>

#include "isa/instruction.hh"
#include "isa/registers.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace irep::assem
{

namespace
{

using isa::Instruction;
using isa::Op;

/** How an instruction's immediate/target must be patched in pass 2. */
enum class Fixup : uint8_t
{
    None,
    Branch,     //!< 16-bit pc-relative word offset to a label
    Jump,       //!< 26-bit absolute word target
    HiPlain,    //!< plain upper 16 bits of a symbol (pairs with ori)
    LoPlain,    //!< plain lower 16 bits of a symbol
    HiAdj,      //!< adjusted upper half (pairs with signed %lo)
    LoSigned,   //!< signed lower half matching HiAdj
};

struct PendingInst
{
    Instruction inst;
    Fixup fixup = Fixup::None;
    std::string label;
    int line = 0;
};

struct DataFixup
{
    uint32_t offset;    //!< byte offset into the data section
    std::string label;
    int line;
};

struct PendingFunction
{
    std::string name;
    uint32_t addr;
    uint8_t numArgs;
    int line;
};

/** Internal assembler state for one translation unit. */
class Unit
{
  public:
    explicit Unit(const std::string &source) : source_(source) {}

    Program run();

  private:
    // --- pass 1 -----------------------------------------------------
    void processLine(std::string_view line);
    void directive(const std::string &name,
                   const std::vector<std::string> &ops);
    void instruction(const std::string &mnem,
                     const std::vector<std::string> &ops);
    void pseudo(const std::string &mnem,
                const std::vector<std::string> &ops, Op base);
    void defineLabel(const std::string &name);

    // --- operand helpers --------------------------------------------
    int reg(const std::string &operand) const;
    int64_t immLiteral(const std::string &operand) const;
    bool isNumeric(const std::string &operand) const;

    /** Parse `offset(base)` or `%lo(sym)(base)` or `sym` address
     *  operands for loads/stores. */
    void memOperand(const std::string &operand, Instruction &inst,
                    Fixup &fixup, std::string &label) const;

    // --- emission ----------------------------------------------------
    void emit(Instruction inst, Fixup fixup = Fixup::None,
              std::string label = {});
    void emitR(Op op, int rd, int rs, int rt);
    void emitShift(Op op, int rd, int rt, int shamt);
    void emitI(Op op, int rt, int rs, int32_t imm,
               Fixup fixup = Fixup::None, std::string label = {});
    void emitLoadImm32(int rt, uint32_t value);
    void emitLoadAddr(int rt, const std::string &label);
    void emitCompareBranch(Op slt_op, bool branch_on_set, int rs,
                           int rt, const std::string &label);
    void emitSetCompare(const std::string &mnem,
                        const std::vector<std::string> &ops);

    void dataBytes(const void *bytes, size_t n);
    void alignData(unsigned bytes);

    uint32_t textAddr() const;

    [[noreturn]] void err(const std::string &msg) const;

    template <typename... Args>
    void
    check(bool ok, const Args &...args) const
    {
        if (!ok) {
            std::ostringstream os;
            (os << ... << args);
            err(os.str());
        }
    }

    // --- pass 2 -----------------------------------------------------
    uint32_t resolve(const std::string &label, int line) const;
    void patch(Program &prog) const;

    const std::string &source_;
    Program prog_;
    std::vector<PendingInst> insts_;
    std::vector<DataFixup> dataFixups_;
    std::optional<PendingFunction> openFunction_;
    std::string entrySymbol_;
    bool inText_ = true;
    int line_ = 0;
};

// ---------------------------------------------------------------------
// Tokenization helpers
// ---------------------------------------------------------------------

std::string
trim(std::string_view s)
{
    size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return std::string(s.substr(b, e - b));
}

/** Split an operand list on commas that are outside quotes/parens. */
std::vector<std::string>
splitOperands(std::string_view s)
{
    std::vector<std::string> out;
    std::string cur;
    int depth = 0;
    bool in_str = false, in_chr = false, escaped = false;
    for (char c : s) {
        if (escaped) {
            cur.push_back(c);
            escaped = false;
            continue;
        }
        if ((in_str || in_chr) && c == '\\') {
            cur.push_back(c);
            escaped = true;
            continue;
        }
        if (c == '"' && !in_chr)
            in_str = !in_str;
        if (c == '\'' && !in_str)
            in_chr = !in_chr;
        if (!in_str && !in_chr) {
            if (c == '(')
                ++depth;
            if (c == ')')
                --depth;
            if (c == ',' && depth == 0) {
                out.push_back(trim(cur));
                cur.clear();
                continue;
            }
        }
        cur.push_back(c);
    }
    std::string last = trim(cur);
    if (!last.empty() || !out.empty())
        out.push_back(last);
    return out;
}

/** Decode the escapes of a quoted string literal body. */
std::string
unescape(std::string_view body)
{
    std::string out;
    for (size_t i = 0; i < body.size(); ++i) {
        char c = body[i];
        if (c != '\\' || i + 1 >= body.size()) {
            out.push_back(c);
            continue;
        }
        char n = body[++i];
        switch (n) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case 'r': out.push_back('\r'); break;
          case '0': out.push_back('\0'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          case '\'': out.push_back('\''); break;
          default: out.push_back(n); break;
        }
    }
    return out;
}

bool
validLabelName(const std::string &s)
{
    if (s.empty())
        return false;
    if (!std::isalpha(static_cast<unsigned char>(s[0])) && s[0] != '_' &&
        s[0] != '.' && s[0] != '$')
        return false;
    return std::all_of(s.begin(), s.end(), [](char c) {
        return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
               c == '.' || c == '$';
    });
}

// ---------------------------------------------------------------------
// Unit implementation
// ---------------------------------------------------------------------

void
Unit::err(const std::string &msg) const
{
    fatal("asm: line ", line_, ": ", msg);
}

uint32_t
Unit::textAddr() const
{
    return Layout::textBase + uint32_t(insts_.size()) * 4;
}

void
Unit::defineLabel(const std::string &name)
{
    check(validLabelName(name), "bad label name '", name, "'");
    check(!prog_.symbols.count(name), "duplicate label '", name, "'");
    const uint32_t addr = inText_
        ? textAddr()
        : Layout::dataBase + uint32_t(prog_.data.size());
    prog_.symbols.emplace(name, addr);
}

int
Unit::reg(const std::string &operand) const
{
    int r = isa::parseRegName(operand);
    check(r >= 0, "bad register '", operand, "'");
    return r;
}

bool
Unit::isNumeric(const std::string &operand) const
{
    if (operand.empty())
        return false;
    size_t i = (operand[0] == '-' || operand[0] == '+') ? 1 : 0;
    if (i >= operand.size())
        return false;
    if (operand[i] == '\'')
        return true;
    return std::isdigit(static_cast<unsigned char>(operand[i]));
}

int64_t
Unit::immLiteral(const std::string &operand) const
{
    check(!operand.empty(), "empty immediate");
    // Character literal.
    if (operand[0] == '\'') {
        std::string body = unescape(
            std::string_view(operand).substr(1, operand.size() - 2));
        check(body.size() == 1, "bad char literal ", operand);
        return static_cast<unsigned char>(body[0]);
    }
    try {
        size_t pos = 0;
        int64_t v = std::stoll(operand, &pos, 0);
        check(pos == operand.size(), "bad immediate '", operand, "'");
        return v;
    } catch (const std::exception &) {
        err("bad immediate '" + operand + "'");
    }
}

void
Unit::emit(Instruction inst, Fixup fixup, std::string label)
{
    check(inText_, "instruction outside .text");
    insts_.push_back(
        PendingInst{inst, fixup, std::move(label), line_});
}

void
Unit::emitR(Op op, int rd, int rs, int rt)
{
    Instruction i;
    i.op = op;
    i.rd = uint8_t(rd);
    i.rs = uint8_t(rs);
    i.rt = uint8_t(rt);
    emit(i);
}

void
Unit::emitShift(Op op, int rd, int rt, int shamt)
{
    check(shamt >= 0 && shamt < 32, "shift amount out of range");
    Instruction i;
    i.op = op;
    i.rd = uint8_t(rd);
    i.rt = uint8_t(rt);
    i.shamt = uint8_t(shamt);
    emit(i);
}

void
Unit::emitI(Op op, int rt, int rs, int32_t imm, Fixup fixup,
            std::string label)
{
    Instruction i;
    i.op = op;
    i.rt = uint8_t(rt);
    i.rs = uint8_t(rs);
    i.imm = imm;
    emit(i, fixup, std::move(label));
}

void
Unit::emitLoadImm32(int rt, uint32_t value)
{
    if (fitsSigned(int32_t(value), 16)) {
        emitI(Op::ADDIU, rt, isa::regZero, int32_t(value));
    } else if (fitsUnsigned(value, 16)) {
        emitI(Op::ORI, rt, isa::regZero, int32_t(value));
    } else {
        emitI(Op::LUI, rt, 0, int32_t(value >> 16));
        if (value & 0xffffu)
            emitI(Op::ORI, rt, rt, int32_t(value & 0xffffu));
    }
}

void
Unit::emitLoadAddr(int rt, const std::string &label)
{
    emitI(Op::LUI, rt, 0, 0, Fixup::HiPlain, label);
    emitI(Op::ORI, rt, rt, 0, Fixup::LoPlain, label);
}

void
Unit::emitCompareBranch(Op slt_op, bool branch_on_set, int rs, int rt,
                        const std::string &label)
{
    Instruction cmp;
    cmp.op = slt_op;
    cmp.rd = isa::regAT;
    cmp.rs = uint8_t(rs);
    cmp.rt = uint8_t(rt);
    emit(cmp);
    emitI(branch_on_set ? Op::BNE : Op::BEQ, isa::regZero, isa::regAT, 0,
          Fixup::Branch, label);
}

void
Unit::emitSetCompare(const std::string &mnem,
                     const std::vector<std::string> &ops)
{
    check(ops.size() == 3, mnem, " expects 3 operands");
    const int rd = reg(ops[0]);
    const int rs = reg(ops[1]);
    const int rt = reg(ops[2]);

    if (mnem == "seq" || mnem == "sne") {
        emitR(Op::SUBU, rd, rs, rt);
        if (mnem == "seq")
            emitI(Op::SLTIU, rd, rd, 1);
        else
            emitR(Op::SLTU, rd, isa::regZero, rd);
    } else if (mnem == "sgt") {
        emitR(Op::SLT, rd, rt, rs);
    } else if (mnem == "sge") {
        emitR(Op::SLT, rd, rs, rt);
        emitI(Op::XORI, rd, rd, 1);
    } else if (mnem == "sle") {
        emitR(Op::SLT, rd, rt, rs);
        emitI(Op::XORI, rd, rd, 1);
    } else if (mnem == "sgtu") {
        emitR(Op::SLTU, rd, rt, rs);
    } else if (mnem == "sgeu") {
        emitR(Op::SLTU, rd, rs, rt);
        emitI(Op::XORI, rd, rd, 1);
    } else if (mnem == "sleu") {
        emitR(Op::SLTU, rd, rt, rs);
        emitI(Op::XORI, rd, rd, 1);
    } else {
        err("unknown set pseudo '" + mnem + "'");
    }
}

void
Unit::memOperand(const std::string &operand, Instruction &inst,
                 Fixup &fixup, std::string &label) const
{
    fixup = Fixup::None;
    label.clear();

    const size_t open = operand.rfind('(');
    if (open != std::string::npos && operand.back() == ')') {
        const std::string base =
            trim(std::string_view(operand).substr(
                open + 1, operand.size() - open - 2));
        const std::string off = trim(
            std::string_view(operand).substr(0, open));
        int b = isa::parseRegName(base);
        check(b >= 0, "bad base register in '", operand, "'");
        inst.rs = uint8_t(b);
        if (off.empty()) {
            inst.imm = 0;
        } else if (off.rfind("%lo(", 0) == 0 && off.back() == ')') {
            fixup = Fixup::LoSigned;
            label = trim(std::string_view(off).substr(
                4, off.size() - 5));
        } else {
            int64_t v = immLiteral(off);
            check(fitsSigned(v, 16), "offset out of range: ", off);
            inst.imm = int32_t(v);
        }
        return;
    }
    err("bad memory operand '" + operand + "' (expected off(base))");
}

void
Unit::dataBytes(const void *bytes, size_t n)
{
    check(!inText_, "data directive inside .text");
    const auto *p = static_cast<const uint8_t *>(bytes);
    prog_.data.insert(prog_.data.end(), p, p + n);
}

void
Unit::alignData(unsigned bytes)
{
    while (prog_.data.size() % bytes)
        prog_.data.push_back(0);
}

void
Unit::directive(const std::string &name,
                const std::vector<std::string> &ops)
{
    if (name == ".text") {
        inText_ = true;
    } else if (name == ".data") {
        inText_ = false;
    } else if (name == ".globl" || name == ".global") {
        // Accepted for compatibility; single-unit assembly needs no
        // export list.
    } else if (name == ".entry") {
        check(ops.size() == 1, ".entry expects a symbol");
        entrySymbol_ = ops[0];
    } else if (name == ".ent") {
        check(!ops.empty() && ops.size() <= 2,
              ".ent expects name[, nargs]");
        check(!openFunction_, ".ent without closing .end");
        check(inText_, ".ent outside .text");
        PendingFunction f;
        f.name = ops[0];
        f.addr = textAddr();
        f.numArgs =
            ops.size() == 2 ? uint8_t(immLiteral(ops[1])) : 0;
        f.line = line_;
        check(f.numArgs <= 4, "at most 4 register arguments");
        openFunction_ = f;
    } else if (name == ".end") {
        check(openFunction_.has_value(), ".end without .ent");
        check(ops.empty() || ops[0] == openFunction_->name,
              ".end name mismatch");
        FunctionInfo info;
        info.name = openFunction_->name;
        info.addr = openFunction_->addr;
        info.size = textAddr() - openFunction_->addr;
        info.numArgs = openFunction_->numArgs;
        prog_.functions.push_back(info);
        openFunction_.reset();
    } else if (name == ".word") {
        alignData(4);
        for (const auto &op : ops) {
            if (isNumeric(op)) {
                uint32_t v = uint32_t(immLiteral(op));
                dataBytes(&v, 4);
            } else {
                dataFixups_.push_back(
                    {uint32_t(prog_.data.size()), op, line_});
                uint32_t zero = 0;
                dataBytes(&zero, 4);
            }
        }
    } else if (name == ".half") {
        alignData(2);
        for (const auto &op : ops) {
            int64_t v = immLiteral(op);
            uint16_t h = uint16_t(v);
            dataBytes(&h, 2);
        }
    } else if (name == ".byte") {
        for (const auto &op : ops) {
            uint8_t b = uint8_t(immLiteral(op));
            dataBytes(&b, 1);
        }
    } else if (name == ".ascii" || name == ".asciiz") {
        check(ops.size() == 1 && ops[0].size() >= 2 &&
                  ops[0].front() == '"' && ops[0].back() == '"',
              name, " expects a quoted string");
        std::string body = unescape(std::string_view(ops[0]).substr(
            1, ops[0].size() - 2));
        dataBytes(body.data(), body.size());
        if (name == ".asciiz") {
            uint8_t z = 0;
            dataBytes(&z, 1);
        }
    } else if (name == ".space") {
        check(ops.size() == 1, ".space expects a size");
        int64_t n = immLiteral(ops[0]);
        check(n >= 0, ".space size must be non-negative");
        check(!inText_, ".space inside .text");
        prog_.data.resize(prog_.data.size() + size_t(n), 0);
    } else if (name == ".align") {
        check(ops.size() == 1, ".align expects a power");
        int64_t p = immLiteral(ops[0]);
        check(p >= 0 && p <= 12, ".align power out of range");
        if (!inText_)
            alignData(1u << p);
    } else {
        err("unknown directive '" + name + "'");
    }
}

void
Unit::pseudo(const std::string &mnem, const std::vector<std::string> &ops,
             Op base)
{
    // Dispatch of pseudo instructions; `base` is Op::INVALID unless the
    // mnemonic collides with a real instruction (3-operand div).
    if (mnem == "nop") {
        check(ops.empty(), "nop takes no operands");
        emitShift(Op::SLL, 0, 0, 0);
    } else if (mnem == "move") {
        check(ops.size() == 2, "move expects 2 operands");
        emitR(Op::ADDU, reg(ops[0]), reg(ops[1]), isa::regZero);
    } else if (mnem == "neg") {
        check(ops.size() == 2, "neg expects 2 operands");
        emitR(Op::SUBU, reg(ops[0]), isa::regZero, reg(ops[1]));
    } else if (mnem == "not") {
        check(ops.size() == 2, "not expects 2 operands");
        emitR(Op::NOR, reg(ops[0]), reg(ops[1]), isa::regZero);
    } else if (mnem == "li") {
        check(ops.size() == 2, "li expects 2 operands");
        emitLoadImm32(reg(ops[0]), uint32_t(immLiteral(ops[1])));
    } else if (mnem == "la") {
        check(ops.size() == 2, "la expects 2 operands");
        emitLoadAddr(reg(ops[0]), ops[1]);
    } else if (mnem == "b") {
        check(ops.size() == 1, "b expects a label");
        emitI(Op::BEQ, isa::regZero, isa::regZero, 0, Fixup::Branch,
              ops[0]);
    } else if (mnem == "beqz" || mnem == "bnez") {
        check(ops.size() == 2, mnem, " expects 2 operands");
        Instruction i;
        i.op = mnem == "beqz" ? Op::BEQ : Op::BNE;
        i.rs = uint8_t(reg(ops[0]));
        i.rt = isa::regZero;
        emit(i, Fixup::Branch, ops[1]);
    } else if (mnem == "blt" || mnem == "bge" || mnem == "bgt" ||
               mnem == "ble" || mnem == "bltu" || mnem == "bgeu" ||
               mnem == "bgtu" || mnem == "bleu") {
        check(ops.size() == 3, mnem, " expects 3 operands");
        const bool uns = mnem.back() == 'u';
        const std::string body = uns
            ? mnem.substr(0, mnem.size() - 1) : mnem;
        const Op slt_op = uns ? Op::SLTU : Op::SLT;
        int rs = reg(ops[0]), rt = reg(ops[1]);
        if (body == "blt")
            emitCompareBranch(slt_op, true, rs, rt, ops[2]);
        else if (body == "bge")
            emitCompareBranch(slt_op, false, rs, rt, ops[2]);
        else if (body == "bgt")
            emitCompareBranch(slt_op, true, rt, rs, ops[2]);
        else  // ble
            emitCompareBranch(slt_op, false, rt, rs, ops[2]);
    } else if (mnem == "mul") {
        check(ops.size() == 3, "mul expects 3 operands");
        emitR(Op::MULT, 0, reg(ops[1]), reg(ops[2]));
        Instruction lo;
        lo.op = Op::MFLO;
        lo.rd = uint8_t(reg(ops[0]));
        emit(lo);
    } else if (mnem == "div" && ops.size() == 3) {
        emitR(base == Op::INVALID ? Op::DIV : base, 0, reg(ops[1]),
              reg(ops[2]));
        Instruction lo;
        lo.op = Op::MFLO;
        lo.rd = uint8_t(reg(ops[0]));
        emit(lo);
    } else if (mnem == "divu" && ops.size() == 3) {
        emitR(Op::DIVU, 0, reg(ops[1]), reg(ops[2]));
        Instruction lo;
        lo.op = Op::MFLO;
        lo.rd = uint8_t(reg(ops[0]));
        emit(lo);
    } else if (mnem == "rem" || mnem == "remu") {
        check(ops.size() == 3, mnem, " expects 3 operands");
        emitR(mnem == "rem" ? Op::DIV : Op::DIVU, 0, reg(ops[1]),
              reg(ops[2]));
        Instruction hi;
        hi.op = Op::MFHI;
        hi.rd = uint8_t(reg(ops[0]));
        emit(hi);
    } else if (mnem == "seq" || mnem == "sne" || mnem == "sgt" ||
               mnem == "sge" || mnem == "sle" || mnem == "sgtu" ||
               mnem == "sgeu" || mnem == "sleu") {
        emitSetCompare(mnem, ops);
    } else {
        err("unknown instruction '" + mnem + "'");
    }
}

void
Unit::instruction(const std::string &mnem,
                  const std::vector<std::string> &ops)
{
    const Op op = isa::opFromMnemonic(mnem);
    // div/divu with 3 operands are pseudos even though the mnemonic is
    // a base instruction.
    if (op == Op::INVALID ||
        ((op == Op::DIV || op == Op::DIVU) && ops.size() == 3)) {
        pseudo(mnem, ops, op);
        return;
    }

    const isa::OpInfo &info = isa::opInfo(op);
    Instruction inst;
    inst.op = op;

    switch (op) {
      case Op::SLL:
      case Op::SRL:
      case Op::SRA:
        check(ops.size() == 3, mnem, " expects rd, rt, shamt");
        emitShift(op, reg(ops[0]), reg(ops[1]),
                  int(immLiteral(ops[2])));
        return;
      case Op::SLLV:
      case Op::SRLV:
      case Op::SRAV:
        check(ops.size() == 3, mnem, " expects rd, rt, rs");
        emitR(op, reg(ops[0]), reg(ops[2]), reg(ops[1]));
        return;
      case Op::JR:
      case Op::MTHI:
      case Op::MTLO:
        check(ops.size() == 1, mnem, " expects rs");
        inst.rs = uint8_t(reg(ops[0]));
        emit(inst);
        return;
      case Op::JALR:
        if (ops.size() == 1) {
            inst.rd = isa::regRA;
            inst.rs = uint8_t(reg(ops[0]));
        } else {
            check(ops.size() == 2, "jalr expects [rd,] rs");
            inst.rd = uint8_t(reg(ops[0]));
            inst.rs = uint8_t(reg(ops[1]));
        }
        emit(inst);
        return;
      case Op::SYSCALL:
      case Op::BREAK:
        check(ops.empty(), mnem, " takes no operands");
        emit(inst);
        return;
      case Op::MFHI:
      case Op::MFLO:
        check(ops.size() == 1, mnem, " expects rd");
        inst.rd = uint8_t(reg(ops[0]));
        emit(inst);
        return;
      case Op::MULT:
      case Op::MULTU:
      case Op::DIV:
      case Op::DIVU:
        check(ops.size() == 2, mnem, " expects rs, rt");
        emitR(op, 0, reg(ops[0]), reg(ops[1]));
        return;
      case Op::BLTZ:
      case Op::BGEZ:
      case Op::BLEZ:
      case Op::BGTZ:
        check(ops.size() == 2, mnem, " expects rs, label");
        inst.rs = uint8_t(reg(ops[0]));
        emit(inst, Fixup::Branch, ops[1]);
        return;
      case Op::BEQ:
      case Op::BNE:
        check(ops.size() == 3, mnem, " expects rs, rt, label");
        inst.rs = uint8_t(reg(ops[0]));
        inst.rt = uint8_t(reg(ops[1]));
        emit(inst, Fixup::Branch, ops[2]);
        return;
      case Op::J:
      case Op::JAL:
        check(ops.size() == 1, mnem, " expects a label");
        emit(inst, Fixup::Jump, ops[0]);
        return;
      case Op::LUI:
        check(ops.size() == 2, "lui expects rt, imm");
        inst.rt = uint8_t(reg(ops[0]));
        if (ops[1].rfind("%hi(", 0) == 0) {
            emit(inst, Fixup::HiAdj,
                 trim(std::string_view(ops[1]).substr(
                     4, ops[1].size() - 5)));
        } else {
            inst.imm = int32_t(immLiteral(ops[1]) & 0xffff);
            emit(inst);
        }
        return;
      default:
        break;
    }

    if (info.isLoad || info.isStore) {
        check(ops.size() == 2, mnem, " expects rt, off(base)");
        inst.rt = uint8_t(reg(ops[0]));
        Fixup fixup;
        std::string label;
        memOperand(ops[1], inst, fixup, label);
        emit(inst, fixup, label);
        return;
    }

    if (info.format == isa::Format::R) {
        check(ops.size() == 3, mnem, " expects rd, rs, rt");
        emitR(op, reg(ops[0]), reg(ops[1]), reg(ops[2]));
        return;
    }

    // Remaining I-format ALU: rt, rs, imm (or %lo for addiu/ori).
    check(ops.size() == 3, mnem, " expects rt, rs, imm");
    inst.rt = uint8_t(reg(ops[0]));
    inst.rs = uint8_t(reg(ops[1]));
    if (ops[2].rfind("%lo(", 0) == 0 && ops[2].back() == ')') {
        emit(inst, Fixup::LoSigned,
             trim(std::string_view(ops[2]).substr(4, ops[2].size() - 5)));
        return;
    }
    const int64_t v = immLiteral(ops[2]);
    if (info.unsignedImm)
        check(fitsUnsigned(v, 16), "immediate out of range: ", ops[2]);
    else
        check(fitsSigned(v, 16), "immediate out of range: ", ops[2]);
    inst.imm = int32_t(v);
    emit(inst);
}

void
Unit::processLine(std::string_view raw)
{
    // Strip comments.
    std::string line;
    bool in_str = false, in_chr = false, escaped = false;
    for (char c : raw) {
        if (!in_str && !in_chr && c == '#')
            break;
        if (escaped) {
            line.push_back(c);
            escaped = false;
            continue;
        }
        if ((in_str || in_chr) && c == '\\')
            escaped = true;
        if (c == '"' && !in_chr)
            in_str = !in_str;
        if (c == '\'' && !in_str)
            in_chr = !in_chr;
        line.push_back(c);
    }

    std::string rest = trim(line);
    // Leading labels.
    while (true) {
        size_t colon = rest.find(':');
        if (colon == std::string::npos)
            break;
        std::string head = trim(std::string_view(rest).substr(0, colon));
        if (!validLabelName(head))
            break;
        defineLabel(head);
        rest = trim(std::string_view(rest).substr(colon + 1));
    }
    if (rest.empty())
        return;

    // Split mnemonic/directive from operands.
    size_t sp = rest.find_first_of(" \t");
    std::string head = sp == std::string::npos
        ? rest : rest.substr(0, sp);
    std::string tail = sp == std::string::npos
        ? std::string() : trim(std::string_view(rest).substr(sp + 1));
    std::vector<std::string> ops =
        tail.empty() ? std::vector<std::string>{} : splitOperands(tail);

    if (head[0] == '.')
        directive(head, ops);
    else
        instruction(head, ops);
}

uint32_t
Unit::resolve(const std::string &label, int line) const
{
    auto it = prog_.symbols.find(label);
    fatalIf(it == prog_.symbols.end(),
            "asm: line ", line, ": undefined symbol '", label, "'");
    return it->second;
}

void
Unit::patch(Program &prog) const
{
    for (size_t idx = 0; idx < insts_.size(); ++idx) {
        const PendingInst &p = insts_[idx];
        Instruction inst = p.inst;
        const uint32_t pc = Layout::textBase + uint32_t(idx) * 4;

        switch (p.fixup) {
          case Fixup::None:
            break;
          case Fixup::Branch: {
            const uint32_t target = resolve(p.label, p.line);
            const int64_t diff =
                (int64_t(target) - int64_t(pc) - 4) >> 2;
            fatalIf(!fitsSigned(diff, 16), "asm: line ", p.line,
                    ": branch to '", p.label, "' out of range");
            inst.imm = int32_t(diff);
            break;
          }
          case Fixup::Jump: {
            const uint32_t target = resolve(p.label, p.line);
            fatalIf((target & 3) != 0 ||
                        (target & 0xf0000000u) !=
                            ((pc + 4) & 0xf0000000u),
                    "asm: line ", p.line, ": jump target unreachable");
            inst.target = (target >> 2) & 0x03ffffffu;
            break;
          }
          case Fixup::HiPlain:
            inst.imm = int32_t(resolve(p.label, p.line) >> 16);
            break;
          case Fixup::LoPlain:
            inst.imm = int32_t(resolve(p.label, p.line) & 0xffffu);
            break;
          case Fixup::HiAdj: {
            const uint32_t v = resolve(p.label, p.line);
            inst.imm = int32_t((v + 0x8000u) >> 16);
            break;
          }
          case Fixup::LoSigned: {
            const uint32_t v = resolve(p.label, p.line);
            inst.imm = signExtend(v & 0xffffu, 16);
            break;
          }
        }
        prog.text.push_back(isa::encode(inst));
    }

    for (const DataFixup &f : dataFixups_) {
        const uint32_t v = resolve(f.label, f.line);
        prog.data[f.offset + 0] = uint8_t(v);
        prog.data[f.offset + 1] = uint8_t(v >> 8);
        prog.data[f.offset + 2] = uint8_t(v >> 16);
        prog.data[f.offset + 3] = uint8_t(v >> 24);
    }
}

Program
Unit::run()
{
    std::istringstream in(source_);
    std::string line;
    while (std::getline(in, line)) {
        ++line_;
        processLine(line);
    }
    fatalIf(openFunction_.has_value(), "asm: unterminated .ent '",
            openFunction_ ? openFunction_->name : "", "'");

    Program out;
    out.symbols = prog_.symbols;
    out.functions = prog_.functions;
    out.data = prog_.data;
    std::sort(out.functions.begin(), out.functions.end(),
              [](const FunctionInfo &a, const FunctionInfo &b) {
                  return a.addr < b.addr;
              });
    patch(out);

    if (!entrySymbol_.empty())
        out.entry = resolve(entrySymbol_, 0);
    else if (out.symbols.count("_start"))
        out.entry = out.symbols.at("_start");
    else if (out.symbols.count("main"))
        out.entry = out.symbols.at("main");
    else
        out.entry = Layout::textBase;
    return out;
}

} // namespace

Program
assemble(const std::string &source)
{
    Unit unit(source);
    return unit.run();
}

} // namespace irep::assem
