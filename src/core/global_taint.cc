#include "core/global_taint.hh"

#include <algorithm>

#include "isa/registers.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace irep::core
{

std::string_view
globalTagName(GlobalTag tag)
{
    switch (tag) {
      case GlobalTag::Uninit:
        return "uninit";
      case GlobalTag::Internal:
        return "internals";
      case GlobalTag::GlobalInit:
        return "global init data";
      case GlobalTag::External:
        return "external input";
    }
    return "?";
}

double
GlobalTaintStats::pctOverall(GlobalTag tag) const
{
    return totalOverall ? 100.0 * double(overall[unsigned(tag)]) /
                              double(totalOverall)
                        : 0.0;
}

double
GlobalTaintStats::pctRepeated(GlobalTag tag) const
{
    return totalRepeated ? 100.0 * double(repeated[unsigned(tag)]) /
                               double(totalRepeated)
                         : 0.0;
}

double
GlobalTaintStats::propensity(GlobalTag tag) const
{
    const uint64_t all = overall[unsigned(tag)];
    return all ? 100.0 * double(repeated[unsigned(tag)]) / double(all)
               : 0.0;
}

namespace
{

std::vector<std::string>
tagSubnames()
{
    std::vector<std::string> names;
    for (unsigned t = 0; t < numGlobalTags; ++t)
        names.emplace_back(globalTagName(GlobalTag(t)));
    return names;
}

} // namespace

void
GlobalTaint::registerStats(stats::Group &group) const
{
    group.scalar("total_overall", "instructions classified",
                 [this] { return double(stats_.totalOverall); });
    group.scalar("total_repeated", "repeated instructions classified",
                 [this] { return double(stats_.totalRepeated); });
    group.vector("overall", "dynamic instructions per source tag",
                 tagSubnames(), [this](size_t i) {
                     return double(stats_.overall[i]);
                 });
    group.vector("repeated", "repeated instructions per source tag",
                 tagSubnames(), [this](size_t i) {
                     return double(stats_.repeated[i]);
                 });
    group.vector("pct_overall",
                 "% of the dynamic stream per source tag (Table 3)",
                 tagSubnames(), [this](size_t i) {
                     return stats_.pctOverall(GlobalTag(i));
                 });
    group.vector("pct_repeated",
                 "% of repeated instructions per source tag (Table 3)",
                 tagSubnames(), [this](size_t i) {
                     return stats_.pctRepeated(GlobalTag(i));
                 });
    group.vector("propensity",
                 "% of each tag's instructions that repeat (Table 3)",
                 tagSubnames(), [this](size_t i) {
                     return stats_.propensity(GlobalTag(i));
                 });
}

GlobalTaint::GlobalTaint(const assem::Program &program)
    : mem_(uint8_t(GlobalTag::Uninit))
{
    regTags_.fill(GlobalTag::Uninit);
    // $zero is a constant; $sp and $gp are loader-provided program
    // constants — all program internals.
    regTags_[isa::regZero] = GlobalTag::Internal;
    regTags_[isa::regSP] = GlobalTag::Internal;
    regTags_[isa::regGP] = GlobalTag::Internal;

    // Statically initialized data (including zero-initialized .space,
    // which the program image carries explicitly).
    if (!program.data.empty()) {
        mem_.fill(assem::Layout::dataBase,
                  uint32_t(program.data.size()),
                  uint8_t(GlobalTag::GlobalInit));
    }
}

void
GlobalTaint::onSyscall(const sim::SyscallRecord &rec)
{
    if (rec.num == sim::Syscall::Read) {
        if (rec.writtenLen) {
            mem_.fill(rec.writtenAddr, rec.writtenLen,
                      uint8_t(GlobalTag::External));
        }
        // The byte count returned in $v0 is derived from external
        // input; tag the SYSCALL instruction's result accordingly.
        pendingExternalResult_ = true;
    } else if (rec.num == sim::Syscall::Write) {
        pendingExternalResult_ = false;
    } else {
        // Sbrk results (and Exit) are program-internal.
        pendingExternalResult_ = false;
    }
}

GlobalTag
GlobalTaint::onInstr(const sim::InstrRecord &rec, bool repeated)
{
    const isa::Instruction &inst = *rec.inst;
    const isa::OpInfo &info = isa::opInfo(inst.op);

    // Supersede rule: pure-immediate instructions are program
    // internals; as soon as the instruction has data inputs, its
    // category is the supersede (max) over those inputs only — a
    // pure-uninit dataflow stays uninit rather than being lifted to
    // internal.
    bool have_input = false;
    GlobalTag tag = GlobalTag::Internal;
    const bool inverted = inverted_;
    auto meet = [&tag, &have_input, inverted](GlobalTag other) {
        if (!have_input)
            tag = other;
        else
            tag = inverted ? std::min(tag, other)
                           : std::max(tag, other);
        have_input = true;
    };

    if (info.isStore) {
        // A store belongs to the slice of the *data* it stores; the
        // address computation was categorized at the instructions that
        // formed it. This is what places prologue saves of never-
        // written callee-saved registers in the uninit category.
        tag = regTags_[inst.rt];
    } else {
        if (info.readsRs)
            meet(regTags_[inst.rs]);
        if (info.readsRt)
            meet(regTags_[inst.rt]);
        if (info.readsHi)
            meet(hiTag_);
        if (info.readsLo)
            meet(loTag_);
        if (info.isLoad)
            meet(GlobalTag(mem_.readMax(rec.memAddr, info.memBytes)));
    }

    if (inst.op == isa::Op::SYSCALL && pendingExternalResult_) {
        meet(GlobalTag::External);
        pendingExternalResult_ = false;
    }

    // Note on uninit: the supersede rule gives Uninit the lowest
    // priority, so an instruction is binned uninit only when every
    // data input is uninitialized (e.g. the prologue save above).

    // Propagate.
    if (rec.writesReg && rec.destReg != isa::regZero)
        regTags_[rec.destReg] = tag;
    if (info.writesHiLo) {
        hiTag_ = tag;
        loTag_ = tag;
    }
    if (info.isStore)
        mem_.fill(rec.memAddr, info.memBytes, uint8_t(tag));

    if (counting_) {
        ++stats_.overall[unsigned(tag)];
        ++stats_.totalOverall;
        if (repeated) {
            ++stats_.repeated[unsigned(tag)];
            ++stats_.totalRepeated;
        }
    }
    return tag;
}

} // namespace irep::core
