/**
 * @file
 * Sparse byte-granular shadow memory for data-flow tags, mirroring the
 * simulator's address space. Untouched bytes read as the default tag.
 *
 * Translation mirrors sim::Memory: a flat page table with one slot per
 * possible 64 KiB page, so shadow reads and writes on the per-access
 * analysis path never hash.
 */

#ifndef IREP_CORE_TAG_MEMORY_HH
#define IREP_CORE_TAG_MEMORY_HH

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

namespace irep::core
{

/** Byte-addressed shadow tag memory with 64 KiB pages. */
class TagMemory
{
  public:
    static constexpr unsigned pageBits = 16;
    static constexpr uint32_t pageSize = 1u << pageBits;
    static constexpr uint32_t numPageSlots = 1u << (32 - pageBits);

    explicit TagMemory(uint8_t default_tag = 0)
        : defaultTag_(default_tag), table_(numPageSlots)
    {}

    /** Read one byte tag. */
    uint8_t
    read(uint32_t addr) const
    {
        const Page *page = table_[addr >> pageBits].get();
        if (!page)
            return defaultTag_;
        return page->tags[addr & (pageSize - 1)];
    }

    /** The maximum tag over @p len bytes starting at @p addr. */
    uint8_t
    readMax(uint32_t addr, uint32_t len) const
    {
        uint8_t best = 0;
        for (uint32_t i = 0; i < len; ++i)
            best = std::max(best, read(addr + i));
        return best;
    }

    /** Write @p len bytes of @p tag starting at @p addr. */
    void
    fill(uint32_t addr, uint32_t len, uint8_t tag)
    {
        for (uint32_t i = 0; i < len; ++i)
            writeByte(addr + i, tag);
    }

  private:
    struct Page
    {
        uint8_t tags[pageSize];
    };

    void
    writeByte(uint32_t addr, uint8_t tag)
    {
        auto &page = table_[addr >> pageBits];
        if (!page) {
            page = std::make_unique<Page>();
            std::memset(page->tags, defaultTag_, pageSize);
        }
        page->tags[addr & (pageSize - 1)] = tag;
    }

    uint8_t defaultTag_;
    std::vector<std::unique_ptr<Page>> table_;
};

} // namespace irep::core

#endif // IREP_CORE_TAG_MEMORY_HH
