/**
 * @file
 * Global analysis (paper §5.1): classify every dynamic instruction by
 * the origin of the data flowing into it — external program input,
 * initialized global data, program internals (immediates), or
 * uninitialized registers — using the supersede rule
 * external >s global-init >s internal >s uninit.
 * Produces Table 3 (overall / repeated / propensity).
 */

#ifndef IREP_CORE_GLOBAL_TAINT_HH
#define IREP_CORE_GLOBAL_TAINT_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "asm/program.hh"
#include "core/tag_memory.hh"
#include "sim/observer.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/**
 * Data-origin categories. Numeric order IS the supersede priority:
 * when slices meet, the larger tag wins (the paper gives priority to
 * the source likely to be less repeatable).
 */
enum class GlobalTag : uint8_t
{
    Uninit = 0,
    Internal = 1,
    GlobalInit = 2,
    External = 3,
};

constexpr unsigned numGlobalTags = 4;

/** Display name of a tag ("internals", "external input", ...). */
std::string_view globalTagName(GlobalTag tag);

/** Table 3 contents. */
struct GlobalTaintStats
{
    std::array<uint64_t, numGlobalTags> overall = {};
    std::array<uint64_t, numGlobalTags> repeated = {};
    uint64_t totalOverall = 0;
    uint64_t totalRepeated = 0;

    double pctOverall(GlobalTag tag) const;
    double pctRepeated(GlobalTag tag) const;
    /** % of the instructions in @p tag 's category that repeated. */
    double propensity(GlobalTag tag) const;
};

/**
 * The global data-flow tagger. Must observe every instruction from
 * program start (tag state must be warm); counts only while counting
 * is enabled.
 */
class GlobalTaint
{
  public:
    explicit GlobalTaint(const assem::Program &program);

    /** Enable/disable statistics counting (tag propagation always
     *  runs). */
    void setCounting(bool enabled) { counting_ = enabled; }

    /**
     * Ablation knob: invert the supersede rule so the *most*
     * repeatable source wins where slices meet (the paper chose the
     * least repeatable). Must be set before any instruction is
     * processed.
     */
    void setInvertedSupersede(bool inverted) { inverted_ = inverted; }

    /**
     * Process a retired instruction.
     * @param repeated Whether the repetition tracker classified this
     *                 dynamic instance as repeated.
     * @return the category this instruction was binned into.
     */
    GlobalTag onInstr(const sim::InstrRecord &rec, bool repeated);

    /** Process a completed syscall (tags externally-read bytes). */
    void onSyscall(const sim::SyscallRecord &rec);

    const GlobalTaintStats &stats() const { return stats_; }

    /** Register Table 3 statistics (per-tag counts and derived
     *  percentages) into @p group; the analysis must outlive it. */
    void registerStats(stats::Group &group) const;

    /** Current tag of a register (exposed for tests). */
    GlobalTag regTag(unsigned reg) const { return regTags_[reg]; }

    /** Current tag of a memory byte (exposed for tests). */
    GlobalTag
    memTag(uint32_t addr) const
    {
        return GlobalTag(mem_.read(addr));
    }

  private:
    std::array<GlobalTag, 32> regTags_;
    GlobalTag hiTag_ = GlobalTag::Internal;
    GlobalTag loTag_ = GlobalTag::Internal;
    TagMemory mem_;
    GlobalTaintStats stats_;
    bool counting_ = false;
    bool inverted_ = false;
    bool pendingExternalResult_ = false;
};

} // namespace irep::core

#endif // IREP_CORE_GLOBAL_TAINT_HH
