#include "core/function_analysis.hh"

#include <algorithm>

#include "isa/registers.hh"
#include "support/hash.hh"
#include "support/stats.hh"

namespace irep::core
{

double
FunctionStats::pctAllArgsRepeated() const
{
    return dynamicCalls
        ? 100.0 * double(allArgsRepeated) / double(dynamicCalls) : 0.0;
}

double
FunctionStats::pctNoArgsRepeated() const
{
    return dynamicCalls
        ? 100.0 * double(noArgsRepeated) / double(dynamicCalls) : 0.0;
}

double
MemoizationStats::pctCleanOfAll() const
{
    return dynamicCalls
        ? 100.0 * double(cleanCalls) / double(dynamicCalls) : 0.0;
}

double
MemoizationStats::pctCleanOfAllArgRep() const
{
    return allArgRepCalls
        ? 100.0 * double(cleanAllArgRepCalls) / double(allArgRepCalls)
        : 0.0;
}

void
FunctionAnalysis::registerStats(stats::Group &group) const
{
    group.scalar("static_functions_called",
                 "distinct functions invoked in the window",
                 [this] {
                     return double(stats().staticFunctionsCalled);
                 });
    group.scalar("dynamic_calls", "dynamic calls in the window",
                 [this] { return double(stats().dynamicCalls); });
    group.scalar("all_args_repeated",
                 "calls whose full argument tuple was seen before",
                 [this] { return double(stats().allArgsRepeated); });
    group.scalar("no_args_repeated",
                 "calls with every argument new for its position",
                 [this] { return double(stats().noArgsRepeated); });
    group.scalar("pct_all_args_repeated",
                 "% of calls with all-argument repetition (Table 4)",
                 [this] { return stats().pctAllArgsRepeated(); });
    group.scalar("pct_no_args_repeated",
                 "% of calls with no-argument repetition (Table 4)",
                 [this] { return stats().pctNoArgsRepeated(); });
    group.scalar("clean_calls",
                 "calls without side effects or implicit inputs",
                 [this] { return double(memo_.cleanCalls); });
    group.scalar("pct_memoizable",
                 "% of all calls that are memoizable (Table 8)",
                 [this] { return memoStats().pctCleanOfAll(); });
    group.scalar(
        "pct_memoizable_of_all_arg_rep",
        "% of all-args-repeated calls that are memoizable (Table 8)",
        [this] { return memoStats().pctCleanOfAllArgRep(); });
}

FunctionAnalysis::FunctionAnalysis(const assem::Program &program,
                                   const sim::Machine &machine)
    : program_(program), machine_(machine), stack_(program)
{
    stack_.current().data.spAtEntry = assem::Layout::stackTop;
}

void
FunctionAnalysis::onSyscall(const sim::SyscallRecord &rec)
{
    (void)rec;
    // Any syscall is an externally visible effect of every active
    // invocation; marking the current frame is enough because flags
    // propagate to parents when frames pop.
    stack_.current().data.sideEffect = true;
}

void
FunctionAnalysis::settleInvocation(const FrameData &data)
{
    if (!data.counted)
        return;
    ++memo_.dynamicCalls;
    const bool clean = !data.sideEffect && !data.implicitInput;
    if (clean)
        ++memo_.cleanCalls;
    if (data.allArgsRep) {
        ++memo_.allArgRepCalls;
        if (clean)
            ++memo_.cleanAllArgRepCalls;
    }
}

void
FunctionAnalysis::onInstr(const sim::InstrRecord &rec, bool repeated,
                          const CallRegs *call)
{
    (void)repeated;
    const isa::Instruction &inst = *rec.inst;
    const isa::OpInfo &info = isa::opInfo(inst.op);

    // Side effects and implicit inputs of the current invocation.
    // A store is a side effect when it escapes the invocation's own
    // frame: anything in the global/heap regions, or at/above the
    // stack pointer the function was entered with.
    if (info.isStore &&
        (rec.memAddr < assem::Layout::stackRegionBase ||
         rec.memAddr >= stack_.current().data.spAtEntry)) {
        stack_.current().data.sideEffect = true;
    }
    if (info.isLoad && rec.memAddr < assem::Layout::stackRegionBase &&
        rec.memAddr >= assem::Layout::dataBase) {
        stack_.current().data.implicitInput = true;
    }

    const int delta = stack_.onInstr(
        rec, [this](const CallStack<FrameData>::Frame &popped,
                    CallStack<FrameData>::Frame &parent) {
            // Effects of the callee are effects of the caller.
            parent.data.sideEffect |= popped.data.sideEffect;
            parent.data.implicitInput |= popped.data.implicitInput;
            settleInvocation(popped.data);
        });

    if (delta <= 0)
        return;

    // A call was pushed; sample the argument registers. A snapshot
    // taken when the call retired (sharded dispatch) takes precedence
    // over the live machine, whose registers have moved on by now.
    FrameData &data = stack_.current().data;
    data.funcAddr = stack_.current().funcAddr;
    data.spAtEntry = call ? call->sp : machine_.reg(isa::regSP);
    data.counted = counting_;
    if (!counting_)
        return;

    const assem::FunctionInfo *finfo = stack_.current().info;
    const unsigned nargs = finfo ? finfo->numArgs : 0;

    FuncState &state = funcs_[data.funcAddr];
    state.numArgs = nargs;
    ++state.calls;

    // A call has no-argument repetition when every argument value is
    // new for its position. Zero-argument calls count as all-args-
    // repeated after the first call (the empty tuple repeats) and
    // never as no-args-repeated.
    uint64_t key = 0x243f6a8885a308d3ull;
    bool any_repeated = false;
    for (unsigned i = 0; i < nargs; ++i) {
        const uint32_t value =
            call ? call->args[i] : machine_.reg(isa::regA0 + i);
        key = hashMix(key, value);
        if (!state.argSeen[i].insert(value))
            any_repeated = true;
    }

    if (uint64_t *count = state.tuples.find(key)) {
        ++*count;
        data.allArgsRep = true;
        ++state.allArgsRep;
    } else if (state.tuples.size() < tupleCap) {
        state.tuples.tryEmplace(key, 1);
    }

    if (nargs > 0 && !any_repeated)
        ++state.noArgsRep;
}

void
FunctionAnalysis::finalize()
{
    auto &frames = stack_.frames();
    // Propagate flags from innermost to outermost, then settle all.
    for (size_t i = frames.size(); i-- > 1;) {
        frames[i - 1].data.sideEffect |= frames[i].data.sideEffect;
        frames[i - 1].data.implicitInput |=
            frames[i].data.implicitInput;
    }
    for (size_t i = 1; i < frames.size(); ++i)
        settleInvocation(frames[i].data);
    frames.resize(1);
}

FunctionStats
FunctionAnalysis::stats() const
{
    FunctionStats s;
    s.staticFunctionsCalled = funcs_.size();
    for (const auto &[addr, f] : funcs_) {
        s.dynamicCalls += f.calls;
        s.allArgsRepeated += f.allArgsRep;
        s.noArgsRepeated += f.noArgsRep;
    }
    return s;
}

MemoizationStats
FunctionAnalysis::memoStats() const
{
    return memo_;
}

double
FunctionAnalysis::argSetCoverage(unsigned k) const
{
    uint64_t covered = 0;
    uint64_t total = 0;
    std::vector<uint64_t> counts;
    for (const auto &[addr, f] : funcs_) {
        total += f.allArgsRep;
        counts.clear();
        counts.reserve(f.tuples.size());
        for (const auto &[key, count] : f.tuples)
            counts.push_back(count);
        std::sort(counts.begin(), counts.end(), std::greater<>());
        for (size_t i = 0; i < counts.size() && i < k; ++i) {
            // A tuple seen c times contributes c-1 repeated calls.
            covered += counts[i] - 1;
        }
    }
    return total ? double(covered) / double(total) : 0.0;
}

} // namespace irep::core
