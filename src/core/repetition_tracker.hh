/**
 * @file
 * The paper's core measurement (§2-§4): per static instruction, buffer
 * up to `instanceCap` unique (inputs, outputs) instances; a dynamic
 * instance matching a buffered one is *repeated*. Produces the data
 * behind Table 1, Table 2 and Figures 1, 3, 4.
 */

#ifndef IREP_CORE_REPETITION_TRACKER_HH
#define IREP_CORE_REPETITION_TRACKER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/observer.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** Coverage-curve point: the smallest fraction of contributors (sorted
 *  by contribution) that covers `coverage` of the repetition. */
struct CoveragePoint
{
    double coverage;        //!< target fraction of repetition [0,1]
    double contributors;    //!< fraction of contributors needed [0,1]
};

/** Figure 3 bucket: statics grouped by unique-repeatable-instance
 *  count. */
struct InstanceBucket
{
    uint32_t lo;            //!< inclusive lower bound
    uint32_t hi;            //!< inclusive upper bound (UINT32_MAX open)
    uint64_t repetition;    //!< dynamic repeats from these statics
    double share;           //!< fraction of total dynamic repetition
};

/** Aggregate results of the total analysis. */
struct RepetitionStats
{
    uint64_t dynTotal = 0;
    uint64_t dynRepeated = 0;
    uint64_t staticTotal = 0;       //!< static instructions in program
    uint64_t staticExecuted = 0;
    uint64_t staticRepeated = 0;    //!< executed statics with >=1 repeat
    uint64_t uniqueRepeatableInstances = 0;
    double avgRepeatsPerInstance = 0.0;

    double pctDynRepeated() const;
    double pctStaticExecuted() const;
    double pctStaticRepeatedOfExecuted() const;
};

/**
 * Tracks instruction repetition for one program run.
 *
 * Call onInstr() for every retired instruction while counting is
 * enabled; query the stats afterwards.
 */
class RepetitionTracker
{
  public:
    /**
     * @param num_static   Dense static-instruction count (text words).
     * @param instance_cap Max buffered unique instances per static
     *                     instruction (the paper used 2000).
     */
    explicit RepetitionTracker(uint32_t num_static,
                               unsigned instance_cap = 2000);

    /**
     * Process a retired instruction.
     * @return true when this dynamic instance is repeated.
     */
    bool onInstr(const sim::InstrRecord &rec);

    /** Aggregate statistics (Table 1 / Table 2). */
    RepetitionStats stats() const;

    /**
     * Register this analysis's statistics (Table 1/2 values plus the
     * Figure 3 instances-per-static distribution) into @p group.
     * Scalars are derived — they read live values at dump time — so
     * the tracker must outlive the group.
     */
    void registerStats(stats::Group &group) const;

    /**
     * Figure 1: fraction of *repeated static instructions* (sorted by
     * repetition contribution) needed to cover each target fraction.
     */
    std::vector<CoveragePoint>
    staticCoverage(const std::vector<double> &targets) const;

    /**
     * Figure 4: fraction of *unique repeatable instances* (sorted by
     * repeat count) needed to cover each target fraction.
     */
    std::vector<CoveragePoint>
    instanceCoverage(const std::vector<double> &targets) const;

    /** Figure 3: repetition share by unique-repeatable-instance-count
     *  bucket (1, 2-10, 11-100, 101-1000, >1000). */
    std::vector<InstanceBucket> instanceBuckets() const;

    /** Per-static executed/repeated counts (for tests and tools). */
    uint64_t execCount(uint32_t static_index) const;
    uint64_t repeatCount(uint32_t static_index) const;

    unsigned instanceCap() const { return cap_; }

  private:
    struct StaticEntry
    {
        // instance hash -> times this instance repeated (0 = buffered
        // but never matched again).
        std::unordered_map<uint64_t, uint32_t> instances;
        uint64_t exec = 0;
        uint64_t repeats = 0;
    };

    std::vector<StaticEntry> statics_;
    unsigned cap_;
    uint64_t dynTotal_ = 0;
    uint64_t dynRepeated_ = 0;
};

} // namespace irep::core

#endif // IREP_CORE_REPETITION_TRACKER_HH
