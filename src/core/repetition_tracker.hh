/**
 * @file
 * The paper's core measurement (§2-§4): per static instruction, buffer
 * up to `instanceCap` unique (inputs, outputs) instances; a dynamic
 * instance matching a buffered one is *repeated*. Produces the data
 * behind Table 1, Table 2 and Figures 1, 3, 4.
 */

#ifndef IREP_CORE_REPETITION_TRACKER_HH
#define IREP_CORE_REPETITION_TRACKER_HH

#include <cstdint>
#include <vector>

#include "sim/observer.hh"
#include "support/flat_map.hh"
#include "support/hash.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** Coverage-curve point: the smallest fraction of contributors (sorted
 *  by contribution) that covers `coverage` of the repetition. */
struct CoveragePoint
{
    double coverage;        //!< target fraction of repetition [0,1]
    double contributors;    //!< fraction of contributors needed [0,1]
};

/** Figure 3 bucket: statics grouped by unique-repeatable-instance
 *  count. */
struct InstanceBucket
{
    uint32_t lo;            //!< inclusive lower bound
    uint32_t hi;            //!< inclusive upper bound (UINT32_MAX open)
    uint64_t repetition;    //!< dynamic repeats from these statics
    double share;           //!< fraction of total dynamic repetition
};

/** Aggregate results of the total analysis. */
struct RepetitionStats
{
    uint64_t dynTotal = 0;
    uint64_t dynRepeated = 0;
    uint64_t staticTotal = 0;       //!< static instructions in program
    uint64_t staticExecuted = 0;
    uint64_t staticRepeated = 0;    //!< executed statics with >=1 repeat
    uint64_t uniqueRepeatableInstances = 0;
    double avgRepeatsPerInstance = 0.0;

    double pctDynRepeated() const;
    double pctStaticExecuted() const;
    double pctStaticRepeatedOfExecuted() const;
};

/**
 * Tracks instruction repetition for one program run.
 *
 * Call onInstr() for every retired instruction while counting is
 * enabled; query the stats afterwards.
 */
class RepetitionTracker
{
  public:
    /**
     * @param num_static   Dense static-instruction count (text words).
     * @param instance_cap Max buffered unique instances per static
     *                     instruction (the paper used 2000).
     */
    explicit RepetitionTracker(uint32_t num_static,
                               unsigned instance_cap = 2000);

    /**
     * The (inputs, outputs) instance hash of a retired instruction.
     * Exposed so the pipeline can compute it once and share it across
     * every analysis that keys on the instance.
     */
    static uint64_t
    instanceKey(const sim::InstrRecord &rec)
    {
        // Key both inputs and outputs: an instance is repeated only
        // when it uses the same operand values AND produces the same
        // result as a buffered instance (paper §2).
        uint64_t key = hashMix(0x9368e53c2f6af274ull, rec.numSrcRegs);
        for (int i = 0; i < rec.numSrcRegs; ++i)
            key = hashMix(key, rec.srcVal[i]);
        return hashMix(key, rec.result);
    }

    /**
     * Process a retired instruction.
     * @return true when this dynamic instance is repeated.
     */
    bool onInstr(const sim::InstrRecord &rec)
    {
        return onInstr(rec, instanceKey(rec));
    }

    /** As above, with the instance hash precomputed by the caller. */
    bool onInstr(const sim::InstrRecord &rec, uint64_t key);

    /** Aggregate statistics (Table 1 / Table 2). */
    RepetitionStats stats() const;

    /**
     * Register this analysis's statistics (Table 1/2 values plus the
     * Figure 3 instances-per-static distribution) into @p group.
     * Scalars are derived — they read live values at dump time — so
     * the tracker must outlive the group.
     */
    void registerStats(stats::Group &group) const;

    /**
     * Figure 1: fraction of *repeated static instructions* (sorted by
     * repetition contribution) needed to cover each target fraction.
     */
    std::vector<CoveragePoint>
    staticCoverage(const std::vector<double> &targets) const;

    /**
     * Figure 4: fraction of *unique repeatable instances* (sorted by
     * repeat count) needed to cover each target fraction.
     */
    std::vector<CoveragePoint>
    instanceCoverage(const std::vector<double> &targets) const;

    /** Figure 3: repetition share by unique-repeatable-instance-count
     *  bucket (1, 2-10, 11-100, 101-1000, >1000). */
    std::vector<InstanceBucket> instanceBuckets() const;

    /** Per-static executed/repeated counts (for tests and tools). */
    uint64_t execCount(uint32_t static_index) const;
    uint64_t repeatCount(uint32_t static_index) const;

    unsigned instanceCap() const { return cap_; }

  private:
    struct StaticEntry
    {
        // instance hash -> times this instance repeated (0 = buffered
        // but never matched again). Most statics see only a handful of
        // distinct instances, so a few pairs live inline; keys are
        // already mixed, so identity hashing suffices after a spill.
        SmallFlatMap<uint64_t, uint32_t, 4, IdentityHash> instances;
        uint64_t exec = 0;
        uint64_t repeats = 0;
    };

    std::vector<StaticEntry> statics_;
    unsigned cap_;
    uint64_t dynTotal_ = 0;
    uint64_t dynRepeated_ = 0;
};

} // namespace irep::core

#endif // IREP_CORE_REPETITION_TRACKER_HH
