/**
 * @file
 * Repetition attribution analysis: breaks the tracker's repetition
 * verdicts down by instruction class *and* program structure, after
 * Coppieters et al. ("Decanting the Contribution of Instruction Types
 * and Loop Structures in the Reuse of Traces"). Every retired
 * instruction is attributed to exactly one structure:
 *
 *  - *call-boundary*: the instruction moves the call stack (jal/jalr
 *    pushes, jr-to-$ra returns) — detected with the same shadow
 *    CallStack the local/function analyses use;
 *  - *innermost-loop*: the static instruction lies inside at least one
 *    natural-loop range, where loop ranges are the [target, branch]
 *    spans of backward conditional branches and backward
 *    intra-function jumps;
 *  - *straight-line*: everything else.
 *
 * The loop map is purely static (built once from the program text), so
 * the analysis reads no machine registers and shards cleanly
 * (core/shard.hh) without producer-side snapshots.
 */

#ifndef IREP_CORE_ATTRIBUTION_HH
#define IREP_CORE_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/callstack.hh"
#include "core/class_analysis.hh"
#include "sim/observer.hh"

namespace irep::assem
{
class Program;
}

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** The structure a dynamic instruction is attributed to. */
enum class LoopStructure : uint8_t
{
    InnermostLoop,  //!< inside >=1 static backward-branch loop range
    StraightLine,   //!< loop-free code between control points
    CallBoundary,   //!< moves the call stack (call or return)
    NUM,
};

constexpr unsigned numLoopStructures = unsigned(LoopStructure::NUM);

/** Display name for a structure. */
std::string_view loopStructureName(LoopStructure s);

/** Per-structure and class-by-structure attribution counts. */
struct AttributionStats
{
    std::array<uint64_t, numLoopStructures> overall = {};
    std::array<uint64_t, numLoopStructures> repeated = {};
    /** [class][structure] cross counts. */
    std::array<std::array<uint64_t, numLoopStructures>, numInstrClasses>
        crossOverall = {};
    std::array<std::array<uint64_t, numLoopStructures>, numInstrClasses>
        crossRepeated = {};
    uint64_t totalOverall = 0;
    uint64_t totalRepeated = 0;

    /** Share of all dynamic instructions in this structure. */
    double pctOfAll(LoopStructure s) const;
    /** Share of this structure's instructions that repeated. */
    double propensity(LoopStructure s) const;
    /** Share of all repetition contributed by this structure. */
    double pctOfRepetition(LoopStructure s) const;
};

/**
 * The analysis: feed every retired record plus the tracker's
 * repetition verdict. Like the other data-flow analyses, the call
 * stack stays warm during the skip phase; only the counters are gated
 * by setCounting().
 */
class RepetitionAttributionAnalysis
{
  public:
    explicit RepetitionAttributionAnalysis(
        const assem::Program &program);

    void setCounting(bool enabled) { counting_ = enabled; }

    /** Process one retired instruction; returns its attribution. */
    LoopStructure onInstr(const sim::InstrRecord &rec, bool repeated);

    const AttributionStats &stats() const { return stats_; }

    /** Register attribution counts and shares into @p group; the
     *  analysis must outlive it. */
    void registerStats(stats::Group &group) const;

    // Static loop map, exposed for tests and tools. -----------------

    /** Natural-loop ranges detected in the text (sorted by span). */
    size_t numLoops() const { return numLoops_; }

    /** Nesting depth of a static instruction: the number of loop
     *  ranges containing it (0 = straight-line). */
    unsigned loopDepth(uint32_t static_index) const
    {
        return static_index < depth_.size() ? depth_[static_index] : 0;
    }

    /** The static-only attribution of an instruction — InnermostLoop
     *  or StraightLine; the dynamic call-boundary override is applied
     *  in onInstr(). */
    LoopStructure
    staticStructure(uint32_t static_index) const
    {
        return loopDepth(static_index) ? LoopStructure::InnermostLoop
                                       : LoopStructure::StraightLine;
    }

  private:
    struct FrameData
    {};

    CallStack<FrameData> stack_;
    std::vector<uint8_t> depth_;    //!< per-static loop nesting depth
    size_t numLoops_ = 0;
    AttributionStats stats_;
    bool counting_ = false;
};

} // namespace irep::core

#endif // IREP_CORE_ATTRIBUTION_HH
