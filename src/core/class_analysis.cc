#include "core/class_analysis.hh"

#include "isa/instruction.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace irep::core
{

std::string_view
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int-alu";
      case InstrClass::MulDiv: return "mul-div";
      case InstrClass::Load: return "load";
      case InstrClass::Store: return "store";
      case InstrClass::Branch: return "branch";
      case InstrClass::Jump: return "jump";
      case InstrClass::Syscall: return "syscall";
      case InstrClass::NUM: break;
    }
    return "?";
}

InstrClass
classify(const isa::Instruction &inst)
{
    using isa::Op;
    const isa::OpInfo &info = isa::opInfo(inst.op);
    if (info.isLoad)
        return InstrClass::Load;
    if (info.isStore)
        return InstrClass::Store;
    if (info.isBranch)
        return InstrClass::Branch;
    if (info.isJump)
        return InstrClass::Jump;
    if (inst.op == Op::SYSCALL || inst.op == Op::BREAK)
        return InstrClass::Syscall;
    if (info.writesHiLo || info.readsHi || info.readsLo)
        return InstrClass::MulDiv;
    return InstrClass::IntAlu;
}

double
ClassStats::pctOfAll(InstrClass c) const
{
    return totalOverall ? 100.0 * double(overall[unsigned(c)]) /
                              double(totalOverall)
                        : 0.0;
}

double
ClassStats::propensity(InstrClass c) const
{
    const uint64_t all = overall[unsigned(c)];
    return all ? 100.0 * double(repeated[unsigned(c)]) / double(all)
               : 0.0;
}

double
ClassStats::pctOfRepetition(InstrClass c) const
{
    return totalRepeated ? 100.0 * double(repeated[unsigned(c)]) /
                               double(totalRepeated)
                         : 0.0;
}

void
ClassAnalysis::registerStats(stats::Group &group) const
{
    std::vector<std::string> names;
    for (unsigned c = 0; c < numInstrClasses; ++c)
        names.emplace_back(instrClassName(InstrClass(c)));

    group.scalar("total_overall", "instructions classified",
                 [this] { return double(stats_.totalOverall); });
    group.scalar("total_repeated", "repeated instructions classified",
                 [this] { return double(stats_.totalRepeated); });
    group.vector("overall", "dynamic instructions per class", names,
                 [this](size_t i) {
                     return double(stats_.overall[i]);
                 });
    group.vector("repeated", "repeated instructions per class", names,
                 [this](size_t i) {
                     return double(stats_.repeated[i]);
                 });
    group.vector("pct_of_all", "% of the dynamic stream per class",
                 names, [this](size_t i) {
                     return stats_.pctOfAll(InstrClass(i));
                 });
    group.vector("propensity",
                 "% of each class's instructions that repeat", names,
                 [this](size_t i) {
                     return stats_.propensity(InstrClass(i));
                 });
    group.vector("pct_of_repetition",
                 "% of all repetition contributed by each class",
                 names, [this](size_t i) {
                     return stats_.pctOfRepetition(InstrClass(i));
                 });
}

InstrClass
ClassAnalysis::onInstr(const sim::InstrRecord &rec, bool repeated)
{
    const InstrClass c = classify(*rec.inst);
    if (counting_) {
        ++stats_.overall[unsigned(c)];
        ++stats_.totalOverall;
        if (repeated) {
            ++stats_.repeated[unsigned(c)];
            ++stats_.totalRepeated;
        }
    }
    return c;
}

} // namespace irep::core
