#include "core/class_analysis.hh"

#include "isa/instruction.hh"
#include "support/logging.hh"

namespace irep::core
{

std::string_view
instrClassName(InstrClass c)
{
    switch (c) {
      case InstrClass::IntAlu: return "int-alu";
      case InstrClass::MulDiv: return "mul-div";
      case InstrClass::Load: return "load";
      case InstrClass::Store: return "store";
      case InstrClass::Branch: return "branch";
      case InstrClass::Jump: return "jump";
      case InstrClass::Syscall: return "syscall";
      case InstrClass::NUM: break;
    }
    return "?";
}

InstrClass
classify(const isa::Instruction &inst)
{
    using isa::Op;
    const isa::OpInfo &info = isa::opInfo(inst.op);
    if (info.isLoad)
        return InstrClass::Load;
    if (info.isStore)
        return InstrClass::Store;
    if (info.isBranch)
        return InstrClass::Branch;
    if (info.isJump)
        return InstrClass::Jump;
    if (inst.op == Op::SYSCALL || inst.op == Op::BREAK)
        return InstrClass::Syscall;
    if (info.writesHiLo || info.readsHi || info.readsLo)
        return InstrClass::MulDiv;
    return InstrClass::IntAlu;
}

double
ClassStats::pctOfAll(InstrClass c) const
{
    return totalOverall ? 100.0 * double(overall[unsigned(c)]) /
                              double(totalOverall)
                        : 0.0;
}

double
ClassStats::propensity(InstrClass c) const
{
    const uint64_t all = overall[unsigned(c)];
    return all ? 100.0 * double(repeated[unsigned(c)]) / double(all)
               : 0.0;
}

double
ClassStats::pctOfRepetition(InstrClass c) const
{
    return totalRepeated ? 100.0 * double(repeated[unsigned(c)]) /
                               double(totalRepeated)
                         : 0.0;
}

InstrClass
ClassAnalysis::onInstr(const sim::InstrRecord &rec, bool repeated)
{
    const InstrClass c = classify(*rec.inst);
    if (counting_) {
        ++stats_.overall[unsigned(c)];
        ++stats_.totalOverall;
        if (repeated) {
            ++stats_.repeated[unsigned(c)];
            ++stats_.totalRepeated;
        }
    }
    return c;
}

} // namespace irep::core
