#include "core/shard.hh"

#include <algorithm>
#include <chrono>

#include "isa/registers.hh"
#include "support/logging.hh"
#include "support/parse.hh"
#include "support/prof.hh"

namespace irep::core
{

namespace
{

/** Entries per batch: big enough to amortize ring traffic, small
 *  enough that a batch stays cache-friendly (~1024 * ~112 B). */
constexpr size_t batchCap = 1024;

/** Batches in flight per ring; bounds producer run-ahead so a slow
 *  analysis exerts backpressure instead of growing a queue. */
constexpr size_t ringDepth = 8;

} // namespace

unsigned
ShardedWindow::resolveJobs(unsigned configured)
{
    if (configured)
        return configured;
    const uint64_t env = parse::envU64("IREP_WINDOW_JOBS", 1);
    fatalIf(env == 0, "IREP_WINDOW_JOBS must be positive");
    fatalIf(env > 1024, "IREP_WINDOW_JOBS is implausibly large");
    return unsigned(env);
}

ShardedWindow::ShardedWindow(AnalysisPipeline &pipe, unsigned jobs,
                             bool profiling)
    : pipe_(pipe), profiling_(profiling),
      wantCallRegs_(pipe.functions_ != nullptr), tracker_(ringDepth)
{
    panicIf(jobs < 2, "ShardedWindow needs at least 2 jobs");
    tracker_.spanName = "shard:tracker";

    // Round-robin the enabled non-tracker analyses over jobs-1
    // consumer workers, preserving the serial dispatch order inside
    // each worker. effectiveWindowJobs() clamps jobs, so every worker
    // gets at least one analysis.
    std::vector<Which> enabled;
    if (pipe.taint_)
        enabled.push_back(Which::Taint);
    if (pipe.local_)
        enabled.push_back(Which::Local);
    if (pipe.functions_)
        enabled.push_back(Which::Functions);
    if (pipe.reuse_)
        enabled.push_back(Which::Reuse);
    if (pipe.classes_)
        enabled.push_back(Which::Classes);
    if (pipe.prediction_)
        enabled.push_back(Which::Prediction);
    if (pipe.attribution_)
        enabled.push_back(Which::Attribution);
    panicIf(enabled.empty(), "ShardedWindow with no analyses to shard");

    const size_t numConsumers = std::min<size_t>(jobs - 1,
                                                 enabled.size());
    consumers_.reserve(numConsumers);
    for (size_t i = 0; i < numConsumers; ++i)
        consumers_.push_back(std::make_unique<Worker>(ringDepth));
    for (size_t i = 0; i < enabled.size(); ++i)
        consumers_[i % numConsumers]->owned.push_back(enabled[i]);
    for (auto &w : consumers_) {
        w->spanName = "shard:";
        for (size_t i = 0; i < w->owned.size(); ++i) {
            if (i)
                w->spanName += '+';
            w->spanName += AnalysisPipeline::profAnalysisName(
                unsigned(w->owned[i]) + 1);
        }
    }

    // Spawn last, so a throw above never leaves threads running.
    try {
        tracker_.thread = std::thread([this] { trackerLoop(); });
        for (auto &w : consumers_) {
            Worker *worker = w.get();
            worker->thread =
                std::thread([this, worker] { consumerLoop(*worker); });
        }
    } catch (...) {
        // Thread spawn failed; unwind the ones already running.
        tracker_.ring.close();
        if (tracker_.thread.joinable())
            tracker_.thread.join();
        for (auto &w : consumers_) {
            if (w->thread.joinable())
                w->thread.join();
        }
        throw;
    }
}

ShardedWindow::~ShardedWindow()
{
    tracker_.ring.close();
    tracker_.thread.join();     // closes the consumer rings on exit
    for (auto &w : consumers_)
        w->thread.join();
}

ShardedWindow::Entry &
ShardedWindow::nextEntry()
{
    if (!pending_) {
        pending_ = std::make_shared<Batch>();
        pending_->entries.reserve(batchCap);
        pending_->counting = counting_;
    }
    pending_->entries.emplace_back();
    return pending_->entries.back();
}

void
ShardedWindow::enqueueRetire(const sim::InstrRecord &rec)
{
    Entry &e = nextEntry();
    e.kind = Entry::Kind::Instr;
    e.rec = rec;

    // FunctionAnalysis samples SP and the argument registers when a
    // call pushes a frame; snapshot them now, while the machine still
    // holds this retire's values (trace replay writes them back just
    // before dispatch, so the read is valid on both paths).
    if (wantCallRegs_ && isa::opInfo(rec.inst->op).isCall) {
        e.hasCallRegs = true;
        const sim::Machine &m = pipe_.machine_;
        e.callRegs.sp = m.reg(isa::regSP);
        for (unsigned i = 0; i < 4; ++i)
            e.callRegs.args[i] = m.reg(isa::regA0 + i);
    }

    // Same cadence as serial onRetire(): every Nth counting retire is
    // a timed sample. The timing itself happens on the workers.
    if (profiling_ && counting_ &&
        ++profTick_ >= AnalysisPipeline::ProfSample::interval) {
        profTick_ = 0;
        e.sampled = true;
        ++samples_;
    }

    if (pending_->entries.size() >= batchCap)
        flush();
}

void
ShardedWindow::enqueueSyscall(const sim::SyscallRecord &rec)
{
    Entry &e = nextEntry();
    e.kind = Entry::Kind::Syscall;
    e.sys = rec;
    if (pending_->entries.size() >= batchCap)
        flush();
}

void
ShardedWindow::flush()
{
    if (!pending_ || pending_->entries.empty())
        return;
    ++pushed_;
    tracker_.ring.push(std::move(pending_));
}

void
ShardedWindow::beginPhase(bool counting)
{
    panicIf(pending_ && !pending_->entries.empty(),
            "beginPhase() with unflushed records");
    counting_ = counting;
}

void
ShardedWindow::endPhase()
{
    flush();
    auto sentinel = std::make_shared<Batch>();
    sentinel->counting = counting_;
    sentinel->phaseEnd = true;
    ++pushed_;
    tracker_.ring.push(std::move(sentinel));
    awaitDrained();
    rethrowIfFailed();
}

void
ShardedWindow::awaitDrained()
{
    const auto drained = [this] {
        if (tracker_.processed.load(std::memory_order_acquire) !=
            pushed_) {
            return false;
        }
        for (const auto &w : consumers_) {
            if (w->processed.load(std::memory_order_acquire) !=
                pushed_) {
                return false;
            }
        }
        return true;
    };
    // Only runs at phase boundaries (twice per run); a polite
    // yield-then-nap poll is plenty and never deadlocks, because
    // workers bump their counters even when draining after a failure.
    for (int spin = 0; !drained(); ++spin) {
        if (spin < 64)
            std::this_thread::yield();
        else
            std::this_thread::sleep_for(
                std::chrono::microseconds(100));
    }
}

void
ShardedWindow::mergeProf(AnalysisPipeline::ProfSample &into)
{
    for (unsigned i = 0;
         i < AnalysisPipeline::ProfSample::numAnalyses; ++i) {
        into.ns[i] += tracker_.ns[i];
        tracker_.ns[i] = 0;
        for (auto &w : consumers_) {
            into.ns[i] += w->ns[i];
            w->ns[i] = 0;
        }
    }
    into.samples += samples_;
    samples_ = 0;
}

void
ShardedWindow::noteFailure(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(failMutex_);
    if (!firstError_)
        firstError_ = std::move(error);
    failed_.store(true, std::memory_order_release);
}

void
ShardedWindow::rethrowIfFailed()
{
    if (!failed_.load(std::memory_order_acquire))
        return;
    std::lock_guard<std::mutex> lock(failMutex_);
    std::rethrow_exception(firstError_);
}

/**
 * Stage 0: annotate each batch with the repetition tracker's verdicts,
 * then fan the now-immutable batch out to every consumer ring. This
 * worker is the single producer for the downstream rings, so they
 * remain SPSC.
 */
void
ShardedWindow::trackerLoop()
{
    BatchPtr batch;
    while (tracker_.ring.pop(batch)) {
        if (!tracker_.drainOnly) {
            try {
                trackBatch(*batch);
            } catch (...) {
                noteFailure(std::current_exception());
                tracker_.drainOnly = true;
            }
        }
        for (auto &w : consumers_)
            w->ring.push(batch);
        batch.reset();
        tracker_.processed.fetch_add(1, std::memory_order_release);
    }
    for (auto &w : consumers_)
        w->ring.close();
}

void
ShardedWindow::trackBatch(Batch &batch)
{
    if (batch.phaseEnd) {
        closePhaseSpan(tracker_);
        return;
    }
    if (profiling_ && !tracker_.phaseOpen) {
        tracker_.phaseOpen = true;
        tracker_.phaseStartNs = prof::nowNs();
        tracker_.phaseBatches = 0;
        tracker_.phaseEntries = 0;
    }
    ++tracker_.phaseBatches;
    tracker_.phaseEntries += batch.entries.size();

    // The tracker only runs inside the window, exactly like serial
    // dispatch: repetition buffers start cold at the window boundary.
    if (!batch.counting)
        return;
    RepetitionTracker &tracker = *pipe_.tracker_;
    for (Entry &e : batch.entries) {
        if (e.kind != Entry::Kind::Instr)
            continue;
        if (e.sampled) {
            const uint64_t t = prof::nowNs();
            e.repeated = tracker.onInstr(
                e.rec, RepetitionTracker::instanceKey(e.rec));
            tracker_.ns[0] += prof::nowNs() - t;
        } else {
            e.repeated = tracker.onInstr(
                e.rec, RepetitionTracker::instanceKey(e.rec));
        }
    }
}

void
ShardedWindow::consumerLoop(Worker &w)
{
    BatchPtr batch;
    while (w.ring.pop(batch)) {
        if (!w.drainOnly) {
            try {
                consumeBatch(w, *batch);
            } catch (...) {
                noteFailure(std::current_exception());
                w.drainOnly = true;
            }
        }
        batch.reset();
        w.processed.fetch_add(1, std::memory_order_release);
    }
}

void
ShardedWindow::consumeBatch(Worker &w, const Batch &batch)
{
    if (batch.phaseEnd) {
        closePhaseSpan(w);
        return;
    }
    if (profiling_ && !w.phaseOpen) {
        w.phaseOpen = true;
        w.phaseStartNs = prof::nowNs();
        w.phaseBatches = 0;
        w.phaseEntries = 0;
    }
    ++w.phaseBatches;
    w.phaseEntries += batch.entries.size();

    for (const Entry &e : batch.entries) {
        if (e.sampled) {
            // The timed path: identical dispatch, with a clock read
            // around each analysis, accumulated into this worker's
            // ProfSample slots (merged at the barrier).
            uint64_t t = prof::nowNs();
            for (Which which : w.owned) {
                dispatch(which, e, batch.counting);
                const uint64_t now = prof::nowNs();
                w.ns[unsigned(which) + 1] += now - t;
                t = now;
            }
        } else {
            for (Which which : w.owned)
                dispatch(which, e, batch.counting);
        }
    }
}

/**
 * One analysis, one entry — the same calls serial onRetire()/
 * onSyscall() makes, with the same counting gates, so counted
 * statistics are bit-identical.
 */
void
ShardedWindow::dispatch(Which which, const Entry &entry, bool counting)
{
    if (entry.kind == Entry::Kind::Syscall) {
        // Serial dispatch sends syscalls to taint and functions only.
        if (which == Which::Taint)
            pipe_.taint_->onSyscall(entry.sys);
        else if (which == Which::Functions)
            pipe_.functions_->onSyscall(entry.sys);
        return;
    }

    switch (which) {
      case Which::Taint:
        pipe_.taint_->onInstr(entry.rec, entry.repeated);
        break;
      case Which::Local:
        pipe_.local_->onInstr(entry.rec, entry.repeated);
        break;
      case Which::Functions:
        pipe_.functions_->onInstr(
            entry.rec, entry.repeated,
            entry.hasCallRegs ? &entry.callRegs : nullptr);
        break;
      case Which::Reuse:
        // The reuse buffer only observes the window, like serial.
        if (counting)
            pipe_.reuse_->onInstr(entry.rec, entry.repeated);
        break;
      case Which::Classes:
        pipe_.classes_->onInstr(entry.rec, entry.repeated);
        break;
      case Which::Prediction:
        pipe_.prediction_->onInstr(entry.rec, entry.repeated);
        break;
      case Which::Attribution:
        pipe_.attribution_->onInstr(entry.rec, entry.repeated);
        break;
    }
}

/** Record this worker's span for the phase that just ended, from the
 *  worker's own thread so the profiler attributes it to the worker's
 *  tid row instead of nesting it under a producer span. */
void
ShardedWindow::closePhaseSpan(Worker &w)
{
    if (!w.phaseOpen)
        return;
    w.phaseOpen = false;
    if (!profiling_)
        return;
    prof::recordSpan(w.spanName, "pipeline", w.phaseStartNs,
                     prof::nowNs() - w.phaseStartNs,
                     {{"batches", double(w.phaseBatches)},
                      {"entries", double(w.phaseEntries)}});
}

} // namespace irep::core
