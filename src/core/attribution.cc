#include "core/attribution.hh"

#include <algorithm>

#include "asm/program.hh"
#include "isa/registers.hh"
#include "support/stats.hh"

namespace irep::core
{

namespace
{

/** One static natural-loop candidate: the span of a backward edge. */
struct LoopRange
{
    uint32_t lo;    //!< branch target (loop head), static index
    uint32_t hi;    //!< the backward branch itself, static index
};

/**
 * Detect backward edges in the text. A conditional branch whose target
 * does not lie past it, or an unconditional `j` staying within the
 * same function, closes the candidate loop [target, branch]. Irreducible
 * edges (jumps into the middle of another range) simply contribute
 * overlapping ranges — attribution only needs containment, not a
 * reducible loop forest. A self-loop (`beq $r, $r, .` with target ==
 * pc) yields the one-instruction range [pc, pc].
 */
std::vector<LoopRange>
detectLoops(const assem::Program &program)
{
    std::vector<LoopRange> loops;
    const uint32_t base = assem::Layout::textBase;
    for (uint32_t i = 0; i < program.text.size(); ++i) {
        const isa::Instruction inst = isa::decode(program.text[i]);
        if (!inst.valid())
            continue;
        const isa::OpInfo &info = isa::opInfo(inst.op);
        const uint32_t pc = base + i * 4;
        uint32_t target = 0;
        if (info.isBranch) {
            target = pc + 4 + (uint32_t(inst.imm) << 2);
        } else if (inst.op == isa::Op::J) {
            target = ((pc + 4) & 0xf0000000u) | (inst.target << 2);
            // A cross-function `j` is a tail transfer, not a loop.
            const assem::FunctionInfo *f = program.functionAt(pc);
            if (!f || !f->contains(target))
                continue;
        } else {
            continue;
        }
        if (target > pc || target < base)
            continue;
        loops.push_back({(target - base) / 4, i});
    }
    return loops;
}

} // namespace

std::string_view
loopStructureName(LoopStructure s)
{
    switch (s) {
      case LoopStructure::InnermostLoop: return "innermost-loop";
      case LoopStructure::StraightLine: return "straight-line";
      case LoopStructure::CallBoundary: return "call-boundary";
      case LoopStructure::NUM: break;
    }
    return "?";
}

double
AttributionStats::pctOfAll(LoopStructure s) const
{
    return totalOverall ? 100.0 * double(overall[unsigned(s)]) /
                              double(totalOverall)
                        : 0.0;
}

double
AttributionStats::propensity(LoopStructure s) const
{
    const uint64_t all = overall[unsigned(s)];
    return all ? 100.0 * double(repeated[unsigned(s)]) / double(all)
               : 0.0;
}

double
AttributionStats::pctOfRepetition(LoopStructure s) const
{
    return totalRepeated ? 100.0 * double(repeated[unsigned(s)]) /
                               double(totalRepeated)
                         : 0.0;
}

RepetitionAttributionAnalysis::RepetitionAttributionAnalysis(
    const assem::Program &program)
    : stack_(program), depth_(program.text.size(), 0)
{
    const std::vector<LoopRange> loops = detectLoops(program);
    numLoops_ = loops.size();
    for (const LoopRange &loop : loops) {
        for (uint32_t i = loop.lo;
             i <= loop.hi && i < depth_.size(); ++i) {
            if (depth_[i] < 255)
                ++depth_[i];
        }
    }
}

LoopStructure
RepetitionAttributionAnalysis::onInstr(const sim::InstrRecord &rec,
                                       bool repeated)
{
    // The call stack stays warm through the skip phase so window
    // attribution starts from the true dynamic nesting. A jr-to-$ra
    // whose return address matches no live frame (the stack machinery
    // reports 0 — e.g. the window opened mid-call) is still a return,
    // so the op test, not the pop result, decides the attribution.
    const isa::Instruction &inst = *rec.inst;
    const int moved = stack_.onInstr(rec);
    LoopStructure s;
    if (moved != 0 || isa::opInfo(inst.op).isCall ||
        (inst.op == isa::Op::JR && inst.rs == isa::regRA)) {
        s = LoopStructure::CallBoundary;
    } else {
        s = staticStructure(rec.staticIndex);
    }

    if (counting_) {
        const InstrClass c = classify(inst);
        ++stats_.overall[unsigned(s)];
        ++stats_.crossOverall[unsigned(c)][unsigned(s)];
        ++stats_.totalOverall;
        if (repeated) {
            ++stats_.repeated[unsigned(s)];
            ++stats_.crossRepeated[unsigned(c)][unsigned(s)];
            ++stats_.totalRepeated;
        }
    }
    return s;
}

void
RepetitionAttributionAnalysis::registerStats(stats::Group &group) const
{
    std::vector<std::string> structures;
    for (unsigned s = 0; s < numLoopStructures; ++s)
        structures.emplace_back(loopStructureName(LoopStructure(s)));
    // Flattened [class][structure] names: "load@innermost-loop", ...
    std::vector<std::string> cross;
    for (unsigned c = 0; c < numInstrClasses; ++c) {
        for (unsigned s = 0; s < numLoopStructures; ++s) {
            cross.emplace_back(
                std::string(instrClassName(InstrClass(c))) + "@" +
                std::string(loopStructureName(LoopStructure(s))));
        }
    }
    const auto crossAt =
        [](const std::array<std::array<uint64_t, numLoopStructures>,
                            numInstrClasses> &m,
           size_t i) {
            return double(m[i / numLoopStructures]
                           [i % numLoopStructures]);
        };

    group.scalar("static_loops",
                 "backward-edge loop ranges detected in the text",
                 [this] { return double(numLoops_); });
    group.scalar("static_in_loop",
                 "static instructions inside >=1 loop range", [this] {
                     return double(std::count_if(
                         depth_.begin(), depth_.end(),
                         [](uint8_t d) { return d > 0; }));
                 });
    group.scalar("total_overall", "instructions attributed",
                 [this] { return double(stats_.totalOverall); });
    group.scalar("total_repeated", "repeated instructions attributed",
                 [this] { return double(stats_.totalRepeated); });
    group.vector("overall", "dynamic instructions per structure",
                 structures, [this](size_t i) {
                     return double(stats_.overall[i]);
                 });
    group.vector("repeated", "repeated instructions per structure",
                 structures, [this](size_t i) {
                     return double(stats_.repeated[i]);
                 });
    group.vector("pct_of_all",
                 "% of the dynamic stream per structure", structures,
                 [this](size_t i) {
                     return stats_.pctOfAll(LoopStructure(i));
                 });
    group.vector("propensity",
                 "% of each structure's instructions that repeat",
                 structures, [this](size_t i) {
                     return stats_.propensity(LoopStructure(i));
                 });
    group.vector("pct_of_repetition",
                 "% of all repetition contributed by each structure",
                 structures, [this](size_t i) {
                     return stats_.pctOfRepetition(LoopStructure(i));
                 });
    group.vector("cross_overall",
                 "dynamic instructions per class@structure cell",
                 cross, [this, crossAt](size_t i) {
                     return crossAt(stats_.crossOverall, i);
                 });
    group.vector("cross_repeated",
                 "repeated instructions per class@structure cell",
                 cross, [this, crossAt](size_t i) {
                     return crossAt(stats_.crossRepeated, i);
                 });
}

} // namespace irep::core
