/**
 * @file
 * Function-level analysis (paper §5.2 and §6): argument repetition per
 * dynamic call (Table 4), side-effect/implicit-input freedom as a
 * memoization criterion (Table 8), and coverage of the most frequent
 * argument tuples as a specialization criterion (Figure 5).
 *
 * A dynamic call has *all-argument repetition* when the exact tuple of
 * register-argument values was passed to the same function before, and
 * *no-argument repetition* when every individual argument value is new
 * for its position. Side effects are stores outside the stack or any
 * syscall; implicit inputs are loads from global or heap data. Stores into the
 * caller's stack frame (through pointer arguments) also count as side
 * effects. Both propagate from callee invocations to their callers (memoizing the
 * caller would elide the callee's effects too).
 */

#ifndef IREP_CORE_FUNCTION_ANALYSIS_HH
#define IREP_CORE_FUNCTION_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <vector>

#include "asm/program.hh"
#include "core/callstack.hh"
#include "sim/machine.hh"
#include "sim/observer.hh"
#include "support/flat_map.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** Table 4 row contents. */
struct FunctionStats
{
    uint64_t staticFunctionsCalled = 0;
    uint64_t dynamicCalls = 0;
    uint64_t allArgsRepeated = 0;
    uint64_t noArgsRepeated = 0;

    double pctAllArgsRepeated() const;
    double pctNoArgsRepeated() const;
};

/**
 * Register values a call retire needs, captured at retire time. The
 * analysis samples SP and the argument registers when a call pushes a
 * frame; off the machine's own thread (the sharded window) those
 * registers keep moving, so the dispatcher snapshots them at enqueue
 * and hands the snapshot to onInstr() instead.
 */
struct CallRegs
{
    uint32_t sp = 0;
    uint32_t args[4] = {};
};

/** Table 8 row contents. */
struct MemoizationStats
{
    uint64_t dynamicCalls = 0;
    uint64_t cleanCalls = 0;            //!< no side effects/implicit in
    uint64_t allArgRepCalls = 0;
    uint64_t cleanAllArgRepCalls = 0;

    double pctCleanOfAll() const;
    double pctCleanOfAllArgRep() const;
};

class FunctionAnalysis
{
  public:
    FunctionAnalysis(const assem::Program &program,
                     const sim::Machine &machine);

    void setCounting(bool enabled) { counting_ = enabled; }

    /** Process a retired instruction (@p repeated is unused here but
     *  kept for interface uniformity). When @p call is non-null it
     *  supplies SP/argument values for a call retire; when null they
     *  are read from the live machine (serial dispatch only). */
    void onInstr(const sim::InstrRecord &rec, bool repeated,
                 const CallRegs *call = nullptr);

    /** Syscalls are side effects of every active invocation. */
    void onSyscall(const sim::SyscallRecord &rec);

    /** Account invocations still on the stack (call at window end). */
    void finalize();

    FunctionStats stats() const;
    MemoizationStats memoStats() const;

    /** Register Table 4 + Table 8 statistics into @p group; the
     *  analysis must outlive it. */
    void registerStats(stats::Group &group) const;

    /**
     * Figure 5: fraction of all-argument-repeated calls covered when
     * every function is specialized for its @p k most frequent
     * argument tuples.
     */
    double argSetCoverage(unsigned k) const;

  private:
    struct FrameData
    {
        bool sideEffect = false;
        bool implicitInput = false;
        bool counted = false;       //!< call happened while counting
        bool allArgsRep = false;
        uint32_t funcAddr = 0;
        uint32_t spAtEntry = 0;     //!< stores at/above this are
                                    //!< effects on the caller
    };

    struct FuncState
    {
        uint64_t calls = 0;
        uint64_t allArgsRep = 0;
        uint64_t noArgsRep = 0;
        unsigned numArgs = 0;
        // Tuple keys are already hash-mixed; identity hashing suffices.
        FlatMap<uint64_t, uint64_t, IdentityHash> tuples;
        std::array<FlatSet<uint32_t>, 4> argSeen;
    };

    static constexpr size_t tupleCap = 1u << 16;

    void settleInvocation(const FrameData &data);

    const assem::Program &program_;
    const sim::Machine &machine_;
    CallStack<FrameData> stack_;
    FlatMap<uint32_t, FuncState> funcs_;
    MemoizationStats memo_;
    bool counting_ = false;
};

} // namespace irep::core

#endif // IREP_CORE_FUNCTION_ANALYSIS_HH
