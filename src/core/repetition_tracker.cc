#include "core/repetition_tracker.hh"

#include <algorithm>

#include "support/hash.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace irep::core
{

double
RepetitionStats::pctDynRepeated() const
{
    return dynTotal ? 100.0 * double(dynRepeated) / double(dynTotal)
                    : 0.0;
}

double
RepetitionStats::pctStaticExecuted() const
{
    return staticTotal
        ? 100.0 * double(staticExecuted) / double(staticTotal) : 0.0;
}

double
RepetitionStats::pctStaticRepeatedOfExecuted() const
{
    return staticExecuted
        ? 100.0 * double(staticRepeated) / double(staticExecuted) : 0.0;
}

RepetitionTracker::RepetitionTracker(uint32_t num_static,
                                     unsigned instance_cap)
    : statics_(num_static), cap_(instance_cap)
{
    fatalIf(instance_cap == 0, "instance cap must be positive");
}

bool
RepetitionTracker::onInstr(const sim::InstrRecord &rec, uint64_t key)
{
    panicIf(rec.staticIndex >= statics_.size(),
            "static index out of range");
    StaticEntry &entry = statics_[rec.staticIndex];
    ++entry.exec;
    ++dynTotal_;

    if (uint32_t *repeats = entry.instances.find(key)) {
        ++*repeats;
        ++entry.repeats;
        ++dynRepeated_;
        return true;
    }
    if (entry.instances.size() < cap_)
        entry.instances.tryEmplace(key, 0);
    return false;
}

RepetitionStats
RepetitionTracker::stats() const
{
    RepetitionStats s;
    s.dynTotal = dynTotal_;
    s.dynRepeated = dynRepeated_;
    s.staticTotal = statics_.size();
    uint64_t total_repeats = 0;
    for (const StaticEntry &e : statics_) {
        if (e.exec)
            ++s.staticExecuted;
        if (e.repeats)
            ++s.staticRepeated;
        e.instances.forEach([&](uint64_t, uint32_t repeats) {
            if (repeats) {
                ++s.uniqueRepeatableInstances;
                total_repeats += repeats;
            }
        });
    }
    s.avgRepeatsPerInstance = s.uniqueRepeatableInstances
        ? double(total_repeats) / double(s.uniqueRepeatableInstances)
        : 0.0;
    return s;
}

void
RepetitionTracker::registerStats(stats::Group &group) const
{
    group.scalar("dyn_total", "dynamic instructions in the window",
                 [this] { return double(dynTotal_); });
    group.scalar("dyn_repeated", "repeated dynamic instructions",
                 [this] { return double(dynRepeated_); });
    group.scalar("pct_dyn_repeated",
                 "% of dynamic instructions repeated (Table 1)",
                 [this] { return stats().pctDynRepeated(); });
    group.scalar("static_total", "static instructions in the program",
                 [this] { return double(statics_.size()); });
    group.scalar("static_executed", "static instructions executed",
                 [this] { return double(stats().staticExecuted); });
    group.scalar("static_repeated",
                 "executed statics with at least one repeat",
                 [this] { return double(stats().staticRepeated); });
    group.scalar("pct_static_executed",
                 "% of statics executed (Table 1)",
                 [this] { return stats().pctStaticExecuted(); });
    group.scalar(
        "pct_static_repeated_of_executed",
        "% of executed statics that repeat (Table 1)",
        [this] { return stats().pctStaticRepeatedOfExecuted(); });
    group.scalar(
        "unique_repeatable_instances",
        "buffered instances matched at least once (Table 2)",
        [this] { return double(stats().uniqueRepeatableInstances); });
    group.scalar("avg_repeats_per_instance",
                 "mean repeats per unique repeatable instance",
                 [this] { return stats().avgRepeatsPerInstance; });
    group.scalar("instance_cap",
                 "buffered-instance cap per static instruction",
                 [this] { return double(cap_); });

    // Figure 3's bucket layout, as a distribution of the
    // unique-repeatable-instance count over repeating statics.
    // Sampled now: register after run() for meaningful contents.
    auto &dist = group.distribution(
        "instances_per_repeating_static",
        "unique repeatable instances per static with repeats",
        {1, 10, 100, 1000});
    for (const StaticEntry &e : statics_) {
        if (!e.repeats)
            continue;
        uint32_t unique_repeatable = 0;
        e.instances.forEach([&](uint64_t, uint32_t repeats) {
            if (repeats)
                ++unique_repeatable;
        });
        dist.sample(double(unique_repeatable));
    }
}

namespace
{

/**
 * Build a coverage curve: sort contributions descending, then for each
 * target fraction report how small a fraction of contributors reaches
 * it.
 */
std::vector<CoveragePoint>
coverageCurve(std::vector<uint64_t> contributions,
              const std::vector<double> &targets)
{
    std::sort(contributions.begin(), contributions.end(),
              std::greater<>());
    uint64_t total = 0;
    for (uint64_t c : contributions)
        total += c;

    std::vector<CoveragePoint> out;
    if (total == 0 || contributions.empty()) {
        for (double t : targets)
            out.push_back({t, 0.0});
        return out;
    }

    std::vector<double> sorted_targets = targets;
    std::sort(sorted_targets.begin(), sorted_targets.end());

    uint64_t running = 0;
    size_t idx = 0;
    std::vector<CoveragePoint> sorted_out;
    for (double t : sorted_targets) {
        const auto goal = uint64_t(double(total) * t);
        while (idx < contributions.size() && running < goal)
            running += contributions[idx++];
        sorted_out.push_back(
            {t, double(idx) / double(contributions.size())});
    }

    // Restore the caller's target ordering.
    for (double t : targets) {
        for (const CoveragePoint &p : sorted_out) {
            if (p.coverage == t) {
                out.push_back(p);
                break;
            }
        }
    }
    return out;
}

} // namespace

std::vector<CoveragePoint>
RepetitionTracker::staticCoverage(const std::vector<double> &targets)
    const
{
    std::vector<uint64_t> contributions;
    for (const StaticEntry &e : statics_) {
        if (e.repeats)
            contributions.push_back(e.repeats);
    }
    return coverageCurve(std::move(contributions), targets);
}

std::vector<CoveragePoint>
RepetitionTracker::instanceCoverage(const std::vector<double> &targets)
    const
{
    std::vector<uint64_t> contributions;
    for (const StaticEntry &e : statics_) {
        e.instances.forEach([&](uint64_t, uint32_t repeats) {
            if (repeats)
                contributions.push_back(repeats);
        });
    }
    return coverageCurve(std::move(contributions), targets);
}

std::vector<InstanceBucket>
RepetitionTracker::instanceBuckets() const
{
    std::vector<InstanceBucket> buckets = {
        {1, 1, 0, 0.0},
        {2, 10, 0, 0.0},
        {11, 100, 0, 0.0},
        {101, 1000, 0, 0.0},
        {1001, UINT32_MAX, 0, 0.0},
    };
    uint64_t total = 0;
    for (const StaticEntry &e : statics_) {
        if (!e.repeats)
            continue;
        uint32_t unique_repeatable = 0;
        e.instances.forEach([&](uint64_t, uint32_t repeats) {
            if (repeats)
                ++unique_repeatable;
        });
        total += e.repeats;
        for (InstanceBucket &b : buckets) {
            if (unique_repeatable >= b.lo && unique_repeatable <= b.hi) {
                b.repetition += e.repeats;
                break;
            }
        }
    }
    for (InstanceBucket &b : buckets)
        b.share = total ? double(b.repetition) / double(total) : 0.0;
    return buckets;
}

uint64_t
RepetitionTracker::execCount(uint32_t static_index) const
{
    return statics_.at(static_index).exec;
}

uint64_t
RepetitionTracker::repeatCount(uint32_t static_index) const
{
    return statics_.at(static_index).repeats;
}

} // namespace irep::core
