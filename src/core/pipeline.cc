#include "core/pipeline.hh"

#include <algorithm>
#include <chrono>

#include "core/shard.hh"
#include "support/prof.hh"
#include "support/stats.hh"

namespace irep::core
{

bool
applyAnalysisSet(std::string_view set, PipelineConfig &config,
                 std::string *error)
{
    PipelineConfig next = config;
    next.enableGlobal = false;
    next.enableLocal = false;
    next.enableFunction = false;
    next.enableReuse = false;
    next.enableClass = false;
    next.enableValuePrediction = false;
    next.enableAttribution = false;

    size_t pos = 0;
    while (pos <= set.size()) {
        const size_t comma = std::min(set.find(',', pos), set.size());
        const std::string_view name = set.substr(pos, comma - pos);
        pos = comma + 1;
        if (name == "tracker") {
            // Always on: the repetition tracker is the measurement.
        } else if (name == "all") {
            next.enableGlobal = true;
            next.enableLocal = true;
            next.enableFunction = true;
            next.enableReuse = true;
            next.enableClass = true;
            next.enableValuePrediction = true;
            next.enableAttribution = true;
        } else if (name == "global") {
            next.enableGlobal = true;
        } else if (name == "local") {
            next.enableLocal = true;
        } else if (name == "functions") {
            next.enableFunction = true;
        } else if (name == "reuse") {
            next.enableReuse = true;
        } else if (name == "classes") {
            next.enableClass = true;
        } else if (name == "prediction") {
            next.enableValuePrediction = true;
        } else if (name == "attribution") {
            next.enableAttribution = true;
        } else {
            if (error) {
                *error = "unknown analysis '" + std::string(name) +
                         "' (valid: tracker, global, local, "
                         "functions, reuse, classes, prediction, "
                         "attribution, all)";
            }
            return false;
        }
    }
    config = next;
    return true;
}

AnalysisPipeline::AnalysisPipeline(sim::Machine &machine,
                                   const PipelineConfig &config)
    : machine_(machine), config_(config)
{
    tracker_ = std::make_unique<RepetitionTracker>(
        machine.numStaticInstructions(), config.instanceCap);
    if (config.enableGlobal)
        taint_ = std::make_unique<GlobalTaint>(machine.program());
    if (config.enableLocal)
        local_ = std::make_unique<LocalAnalysis>(machine.program());
    if (config.enableFunction) {
        functions_ = std::make_unique<FunctionAnalysis>(
            machine.program(), machine);
    }
    if (config.enableReuse)
        reuse_ = std::make_unique<ReuseBuffer>(config.reuse);
    if (config.enableClass)
        classes_ = std::make_unique<ClassAnalysis>();
    if (config.enableValuePrediction) {
        prediction_ =
            std::make_unique<ValuePrediction>(config.predictor);
    }
    if (config.enableAttribution) {
        attribution_ = std::make_unique<RepetitionAttributionAnalysis>(
            machine.program());
    }
    machine.addObserver(this);
}

AnalysisPipeline::~AnalysisPipeline()
{
    machine_.removeObserver(this);
}

void
AnalysisPipeline::setCounting(bool enabled)
{
    counting_ = enabled;
    if (taint_)
        taint_->setCounting(enabled);
    if (local_)
        local_->setCounting(enabled);
    if (functions_)
        functions_->setCounting(enabled);
    if (reuse_)
        reuse_->setCounting(enabled);
    if (classes_)
        classes_->setCounting(enabled);
    if (prediction_)
        prediction_->setCounting(enabled);
    if (attribution_)
        attribution_->setCounting(enabled);
}

void
AnalysisPipeline::onRetire(const sim::InstrRecord &rec)
{
    // Sharded window: the producer thread only enqueues; the tracker
    // worker and the consumer shards run the dispatch below on their
    // own threads (core/shard.hh), including the sampled-timing path.
    if (shard_) {
        shard_->enqueueRetire(rec);
        return;
    }

    // Profiling samples every Nth window retire through the timed
    // dispatch below; the other N-1 (and everything when profiling is
    // off, where this is one predictable branch) take the plain path.
    if (profiling_ && counting_ &&
        ++profTick_ >= ProfSample::interval) {
        profTick_ = 0;
        onRetireSampled(rec);
        return;
    }

    // Repetition buffering only runs in the window (the paper's
    // buffers start cold at the window boundary). The instance hash is
    // computed once here and shared with every analysis keyed on it.
    const bool repeated = counting_
        ? tracker_->onInstr(rec, RepetitionTracker::instanceKey(rec))
        : false;

    if (taint_)
        taint_->onInstr(rec, repeated);
    if (local_)
        local_->onInstr(rec, repeated);
    if (functions_)
        functions_->onInstr(rec, repeated);
    if (reuse_ && counting_)
        reuse_->onInstr(rec, repeated);
    if (classes_)
        classes_->onInstr(rec, repeated);
    if (prediction_)
        prediction_->onInstr(rec, repeated);
    if (attribution_)
        attribution_->onInstr(rec, repeated);
}

/**
 * Identical dispatch to onRetire()'s plain path — same calls, same
 * order, same `repeated` plumbing, so statistics are bit-identical
 * with profiling on — but with a clock read around each analysis.
 * Only ever called inside the window (counting_ is true).
 */
void
AnalysisPipeline::onRetireSampled(const sim::InstrRecord &rec)
{
    uint64_t t = prof::nowNs();
    const auto lap = [&t](uint64_t &sink) {
        const uint64_t now = prof::nowNs();
        sink += now - t;
        t = now;
    };

    const bool repeated =
        tracker_->onInstr(rec, RepetitionTracker::instanceKey(rec));
    lap(profSample_.ns[0]);
    if (taint_) {
        taint_->onInstr(rec, repeated);
        lap(profSample_.ns[1]);
    }
    if (local_) {
        local_->onInstr(rec, repeated);
        lap(profSample_.ns[2]);
    }
    if (functions_) {
        functions_->onInstr(rec, repeated);
        lap(profSample_.ns[3]);
    }
    if (reuse_) {
        reuse_->onInstr(rec, repeated);
        lap(profSample_.ns[4]);
    }
    if (classes_) {
        classes_->onInstr(rec, repeated);
        lap(profSample_.ns[5]);
    }
    if (prediction_) {
        prediction_->onInstr(rec, repeated);
        lap(profSample_.ns[6]);
    }
    if (attribution_) {
        attribution_->onInstr(rec, repeated);
        lap(profSample_.ns[7]);
    }
    ++profSample_.samples;
}

const char *
AnalysisPipeline::profAnalysisName(unsigned i)
{
    static const char *const names[ProfSample::numAnalyses] = {
        "tracker", "taint", "local", "functions", "reuse", "classes",
        "prediction", "attribution"};
    return names[i];
}

void
AnalysisPipeline::onSyscall(const sim::SyscallRecord &rec)
{
    if (shard_) {
        shard_->enqueueSyscall(rec);
        return;
    }
    if (taint_)
        taint_->onSyscall(rec);
    if (functions_)
        functions_->onSyscall(rec);
}

unsigned
AnalysisPipeline::effectiveWindowJobs() const
{
    const unsigned others =
        (taint_ ? 1u : 0u) + (local_ ? 1u : 0u) +
        (functions_ ? 1u : 0u) + (reuse_ ? 1u : 0u) +
        (classes_ ? 1u : 0u) + (prediction_ ? 1u : 0u) +
        (attribution_ ? 1u : 0u);
    return std::min(ShardedWindow::resolveJobs(config_.windowJobs),
                    1 + others);
}

template <typename Exec>
uint64_t
AnalysisPipeline::runPhases(Exec &&exec, bool allow_sharding)
{
    using clock = std::chrono::steady_clock;
    const auto elapsed = [](clock::time_point from) {
        return std::chrono::duration<double>(clock::now() - from)
            .count();
    };

    // Fresh per-run state: a second run() on the same pipeline must
    // not inherit the previous run's timing, sample accumulators, or
    // sampling phase (satellite of the sharding work — profSample_
    // aggregation has to start from zero every run).
    profiling_ = prof::enabled();
    profTick_ = 0;
    profSample_ = ProfSample();
    timing_ = RunTiming();

    // Leave the pipeline quiescent however we exit: counting off, no
    // shard workers. Declared in this order so the shard (which may
    // still be dispatching into the analyses) is torn down *before*
    // counting is reset during unwinding.
    struct CountingOff
    {
        AnalysisPipeline &pipe;
        ~CountingOff() { pipe.setCounting(false); }
    } counting_off{*this};
    struct ShardOff
    {
        std::unique_ptr<ShardedWindow> &slot;
        ~ShardOff() { slot.reset(); }
    } shard_off{shard_};

    if (allow_sharding) {
        const unsigned jobs = effectiveWindowJobs();
        if (jobs >= 2) {
            shard_ = std::make_unique<ShardedWindow>(*this, jobs,
                                                     profiling_);
        }
    }

    setCounting(false);
    if (progress_)
        progress_->setPhase("skip");
    if (config_.skipInstructions) {
        if (shard_)
            shard_->beginPhase(false);
        const uint64_t span_start = profiling_ ? prof::nowNs() : 0;
        const auto start = clock::now();
        timing_.skip.instructions = exec(config_.skipInstructions);
        if (shard_)
            shard_->endPhase();
        // The phase clock stops after the drain barrier, so sharded
        // timing covers the slowest consumer, not just the producer's
        // enqueue loop.
        timing_.skip.seconds = elapsed(start);
        if (profiling_) {
            prof::recordSpan(
                "skip", "pipeline", span_start,
                prof::nowNs() - span_start,
                {{"instructions", double(timing_.skip.instructions)}});
        }
    }

    // Counting may only flip while the shard workers are quiescent
    // (before any batch, or after an endPhase() barrier).
    setCounting(true);
    if (progress_)
        progress_->setPhase("window");
    if (shard_)
        shard_->beginPhase(true);
    const uint64_t span_start = profiling_ ? prof::nowNs() : 0;
    const auto start = clock::now();
    const uint64_t executed = exec(config_.windowInstructions);
    if (shard_)
        shard_->endPhase();
    timing_.window.seconds = elapsed(start);
    timing_.window.instructions = executed;
    if (shard_ && profiling_)
        shard_->mergeProf(profSample_);
    setCounting(false);
    if (profiling_)
        publishProf(span_start);

    if (functions_)
        functions_->finalize();
    return executed;
}

/**
 * Turn the sampled per-analysis costs into the report: one "window"
 * span whose args carry the estimated per-analysis nanoseconds
 * (sampled_ns scaled by retires/samples), plus raw counters so suite
 * runs aggregate across workloads.
 */
void
AnalysisPipeline::publishProf(uint64_t window_start_ns)
{
    prof::SpanArgs args;
    args.emplace_back("instructions",
                      double(timing_.window.instructions));
    const double scale = profSample_.samples
        ? double(timing_.window.instructions) /
            double(profSample_.samples)
        : 0.0;
    prof::counterAdd("pipeline/windows", 1);
    prof::counterAdd("pipeline/window_retires",
                     double(timing_.window.instructions));
    prof::counterAdd("pipeline/sampled_retires",
                     double(profSample_.samples));
    for (unsigned i = 0; i < ProfSample::numAnalyses; ++i) {
        const std::string name = profAnalysisName(i);
        const double est = double(profSample_.ns[i]) * scale;
        args.emplace_back(name + "_ns_est", est);
        prof::counterAdd("analysis/" + name + "/sampled_ns",
                         double(profSample_.ns[i]));
        prof::counterAdd("analysis/" + name + "/window_ns_est", est);
    }
    prof::recordSpan("window", "pipeline", window_start_ns,
                     prof::nowNs() - window_start_ns, std::move(args));
}

uint64_t
AnalysisPipeline::run()
{
    return runPhases(
        [this](uint64_t n) { return machine_.run(n); },
        /*allow_sharding=*/true);
}

uint64_t
AnalysisPipeline::runFromSource(sim::ReplaySource &source)
{
    return runPhases(
        [this, &source](uint64_t n) { return source.replay(*this, n); },
        /*allow_sharding=*/true);
}

uint64_t
AnalysisPipeline::runStepwise()
{
    // The stepwise path exists to verify the execution engines; keep
    // it strictly serial regardless of the window-jobs knob.
    return runPhases([this](uint64_t n) {
        uint64_t done = 0;
        while (done < n && !machine_.halted()) {
            machine_.step();
            ++done;
        }
        return done;
    }, /*allow_sharding=*/false);
}

void
AnalysisPipeline::registerStats(stats::Group &root) const
{
    auto &run = root.group("run");
    run.scalar("skip_config", "configured skip length",
               [this] { return double(config_.skipInstructions); });
    run.scalar("window_config", "configured window length",
               [this] { return double(config_.windowInstructions); });
    run.scalar("skip_instructions", "instructions skipped",
               [this] { return double(timing_.skip.instructions); });
    run.scalar("skip_seconds", "wall-clock seconds of the skip phase",
               [this] { return timing_.skip.seconds; });
    run.scalar("window_instructions",
               "instructions executed in the measurement window",
               [this] { return double(timing_.window.instructions); });
    run.scalar("window_seconds",
               "wall-clock seconds of the measurement window",
               [this] { return timing_.window.seconds; });
    run.scalar("window_mips",
               "simulated MIPS over the measurement window",
               [this] { return timing_.window.mips(); });

    tracker_->registerStats(root.group("repetition"));
    if (taint_)
        taint_->registerStats(root.group("global"));
    if (local_)
        local_->registerStats(root.group("local"));
    if (functions_)
        functions_->registerStats(root.group("functions"));
    if (reuse_)
        reuse_->registerStats(root.group("reuse"));
    if (classes_)
        classes_->registerStats(root.group("classes"));
    if (prediction_)
        prediction_->registerStats(root.group("prediction"));
    if (attribution_)
        attribution_->registerStats(root.group("attribution"));
}

} // namespace irep::core
