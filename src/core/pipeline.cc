#include "core/pipeline.hh"

#include <chrono>

#include "support/stats.hh"

namespace irep::core
{

AnalysisPipeline::AnalysisPipeline(sim::Machine &machine,
                                   const PipelineConfig &config)
    : machine_(machine), config_(config)
{
    tracker_ = std::make_unique<RepetitionTracker>(
        machine.numStaticInstructions(), config.instanceCap);
    if (config.enableGlobal)
        taint_ = std::make_unique<GlobalTaint>(machine.program());
    if (config.enableLocal)
        local_ = std::make_unique<LocalAnalysis>(machine.program());
    if (config.enableFunction) {
        functions_ = std::make_unique<FunctionAnalysis>(
            machine.program(), machine);
    }
    if (config.enableReuse)
        reuse_ = std::make_unique<ReuseBuffer>(config.reuse);
    if (config.enableClass)
        classes_ = std::make_unique<ClassAnalysis>();
    if (config.enableValuePrediction) {
        prediction_ =
            std::make_unique<ValuePrediction>(config.predictor);
    }
    machine.addObserver(this);
}

AnalysisPipeline::~AnalysisPipeline()
{
    machine_.removeObserver(this);
}

void
AnalysisPipeline::setCounting(bool enabled)
{
    counting_ = enabled;
    if (taint_)
        taint_->setCounting(enabled);
    if (local_)
        local_->setCounting(enabled);
    if (functions_)
        functions_->setCounting(enabled);
    if (reuse_)
        reuse_->setCounting(enabled);
    if (classes_)
        classes_->setCounting(enabled);
    if (prediction_)
        prediction_->setCounting(enabled);
}

void
AnalysisPipeline::onRetire(const sim::InstrRecord &rec)
{
    // Repetition buffering only runs in the window (the paper's
    // buffers start cold at the window boundary). The instance hash is
    // computed once here and shared with every analysis keyed on it.
    const bool repeated = counting_
        ? tracker_->onInstr(rec, RepetitionTracker::instanceKey(rec))
        : false;

    if (taint_)
        taint_->onInstr(rec, repeated);
    if (local_)
        local_->onInstr(rec, repeated);
    if (functions_)
        functions_->onInstr(rec, repeated);
    if (reuse_ && counting_)
        reuse_->onInstr(rec, repeated);
    if (classes_)
        classes_->onInstr(rec, repeated);
    if (prediction_)
        prediction_->onInstr(rec, repeated);
}

void
AnalysisPipeline::onSyscall(const sim::SyscallRecord &rec)
{
    if (taint_)
        taint_->onSyscall(rec);
    if (functions_)
        functions_->onSyscall(rec);
}

template <typename Exec>
uint64_t
AnalysisPipeline::runPhases(Exec &&exec)
{
    using clock = std::chrono::steady_clock;
    const auto elapsed = [](clock::time_point from) {
        return std::chrono::duration<double>(clock::now() - from)
            .count();
    };

    setCounting(false);
    if (progress_)
        progress_->setPhase("skip");
    if (config_.skipInstructions) {
        const auto start = clock::now();
        timing_.skip.instructions = exec(config_.skipInstructions);
        timing_.skip.seconds = elapsed(start);
    }

    setCounting(true);
    if (progress_)
        progress_->setPhase("window");
    const auto start = clock::now();
    const uint64_t executed = exec(config_.windowInstructions);
    timing_.window.seconds = elapsed(start);
    timing_.window.instructions = executed;
    setCounting(false);

    if (functions_)
        functions_->finalize();
    return executed;
}

uint64_t
AnalysisPipeline::run()
{
    return runPhases(
        [this](uint64_t n) { return machine_.run(n); });
}

uint64_t
AnalysisPipeline::runFromSource(sim::ReplaySource &source)
{
    return runPhases(
        [this, &source](uint64_t n) { return source.replay(*this, n); });
}

uint64_t
AnalysisPipeline::runStepwise()
{
    return runPhases([this](uint64_t n) {
        uint64_t done = 0;
        while (done < n && !machine_.halted()) {
            machine_.step();
            ++done;
        }
        return done;
    });
}

void
AnalysisPipeline::registerStats(stats::Group &root) const
{
    auto &run = root.group("run");
    run.scalar("skip_config", "configured skip length",
               [this] { return double(config_.skipInstructions); });
    run.scalar("window_config", "configured window length",
               [this] { return double(config_.windowInstructions); });
    run.scalar("skip_instructions", "instructions skipped",
               [this] { return double(timing_.skip.instructions); });
    run.scalar("skip_seconds", "wall-clock seconds of the skip phase",
               [this] { return timing_.skip.seconds; });
    run.scalar("window_instructions",
               "instructions executed in the measurement window",
               [this] { return double(timing_.window.instructions); });
    run.scalar("window_seconds",
               "wall-clock seconds of the measurement window",
               [this] { return timing_.window.seconds; });
    run.scalar("window_mips",
               "simulated MIPS over the measurement window",
               [this] { return timing_.window.mips(); });

    tracker_->registerStats(root.group("repetition"));
    if (taint_)
        taint_->registerStats(root.group("global"));
    if (local_)
        local_->registerStats(root.group("local"));
    if (functions_)
        functions_->registerStats(root.group("functions"));
    if (reuse_)
        reuse_->registerStats(root.group("reuse"));
    if (classes_)
        classes_->registerStats(root.group("classes"));
    if (prediction_)
        prediction_->registerStats(root.group("prediction"));
}

} // namespace irep::core
