#include "core/pipeline.hh"

namespace irep::core
{

AnalysisPipeline::AnalysisPipeline(sim::Machine &machine,
                                   const PipelineConfig &config)
    : machine_(machine), config_(config)
{
    tracker_ = std::make_unique<RepetitionTracker>(
        machine.numStaticInstructions(), config.instanceCap);
    if (config.enableGlobal)
        taint_ = std::make_unique<GlobalTaint>(machine.program());
    if (config.enableLocal)
        local_ = std::make_unique<LocalAnalysis>(machine.program());
    if (config.enableFunction) {
        functions_ = std::make_unique<FunctionAnalysis>(
            machine.program(), machine);
    }
    if (config.enableReuse)
        reuse_ = std::make_unique<ReuseBuffer>(config.reuse);
    if (config.enableClass)
        classes_ = std::make_unique<ClassAnalysis>();
    if (config.enableValuePrediction) {
        prediction_ =
            std::make_unique<ValuePrediction>(config.predictor);
    }
    machine.addObserver(this);
}

void
AnalysisPipeline::setCounting(bool enabled)
{
    counting_ = enabled;
    if (taint_)
        taint_->setCounting(enabled);
    if (local_)
        local_->setCounting(enabled);
    if (functions_)
        functions_->setCounting(enabled);
    if (reuse_)
        reuse_->setCounting(enabled);
    if (classes_)
        classes_->setCounting(enabled);
    if (prediction_)
        prediction_->setCounting(enabled);
}

void
AnalysisPipeline::onRetire(const sim::InstrRecord &rec)
{
    // Repetition buffering only runs in the window (the paper's
    // buffers start cold at the window boundary).
    const bool repeated = counting_ ? tracker_->onInstr(rec) : false;

    if (taint_)
        taint_->onInstr(rec, repeated);
    if (local_)
        local_->onInstr(rec, repeated);
    if (functions_)
        functions_->onInstr(rec, repeated);
    if (reuse_ && counting_)
        reuse_->onInstr(rec, repeated);
    if (classes_)
        classes_->onInstr(rec, repeated);
    if (prediction_)
        prediction_->onInstr(rec, repeated);
}

void
AnalysisPipeline::onSyscall(const sim::SyscallRecord &rec)
{
    if (taint_)
        taint_->onSyscall(rec);
    if (functions_)
        functions_->onSyscall(rec);
}

uint64_t
AnalysisPipeline::run()
{
    setCounting(false);
    if (config_.skipInstructions)
        machine_.run(config_.skipInstructions);

    setCounting(true);
    const uint64_t executed = machine_.run(config_.windowInstructions);
    setCounting(false);

    if (functions_)
        functions_->finalize();
    return executed;
}

} // namespace irep::core
