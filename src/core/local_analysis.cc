#include "core/local_analysis.hh"

#include <algorithm>

#include "isa/registers.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace irep::core
{

using isa::Instruction;
using isa::Op;

std::string_view
localCatName(LocalCat cat)
{
    switch (cat) {
      case LocalCat::Prologue: return "prologue";
      case LocalCat::Epilogue: return "epilogue";
      case LocalCat::FuncInternal: return "function internals";
      case LocalCat::GlbAddrCalc: return "glb_addr_calc";
      case LocalCat::Return: return "return";
      case LocalCat::SP: return "SP";
      case LocalCat::RetVal: return "return values";
      case LocalCat::Argument: return "arguments";
      case LocalCat::Global: return "global";
      case LocalCat::Heap: return "heap";
      case LocalCat::NUM: break;
    }
    return "?";
}

double
LocalStats::pctOverall(LocalCat cat) const
{
    return totalOverall ? 100.0 * double(overall[unsigned(cat)]) /
                              double(totalOverall)
                        : 0.0;
}

double
LocalStats::pctRepeated(LocalCat cat) const
{
    return totalRepeated ? 100.0 * double(repeated[unsigned(cat)]) /
                               double(totalRepeated)
                         : 0.0;
}

double
LocalStats::propensity(LocalCat cat) const
{
    const uint64_t all = overall[unsigned(cat)];
    return all ? 100.0 * double(repeated[unsigned(cat)]) / double(all)
               : 0.0;
}

namespace
{

std::vector<std::string>
catSubnames()
{
    std::vector<std::string> names;
    for (unsigned c = 0; c < numLocalCats; ++c)
        names.emplace_back(localCatName(LocalCat(c)));
    return names;
}

} // namespace

void
LocalAnalysis::registerStats(stats::Group &group) const
{
    group.scalar("total_overall", "instructions classified",
                 [this] { return double(stats_.totalOverall); });
    group.scalar("total_repeated", "repeated instructions classified",
                 [this] { return double(stats_.totalRepeated); });
    group.vector("overall", "dynamic instructions per category",
                 catSubnames(), [this](size_t i) {
                     return double(stats_.overall[i]);
                 });
    group.vector("repeated", "repeated instructions per category",
                 catSubnames(), [this](size_t i) {
                     return double(stats_.repeated[i]);
                 });
    group.vector("pct_overall",
                 "% of the dynamic stream per category (Table 5)",
                 catSubnames(), [this](size_t i) {
                     return stats_.pctOverall(LocalCat(i));
                 });
    group.vector("pct_repeated",
                 "% of repeated instructions per category (Table 6)",
                 catSubnames(), [this](size_t i) {
                     return stats_.pctRepeated(LocalCat(i));
                 });
    group.vector(
        "propensity",
        "% of each category's instructions that repeat (Table 7)",
        catSubnames(), [this](size_t i) {
            return stats_.propensity(LocalCat(i));
        });
}

LocalAnalysis::LocalAnalysis(const assem::Program &program)
    : program_(program), stack_(program),
      stackTags_(uint8_t(LocalTag::FuncInternal)),
      heapStart_(program.heapStart())
{
    initFrame(stack_.current().data,
              program.functionAt(program.entry));
}

int
LocalAnalysis::calleeSavedSlot(unsigned reg)
{
    if (reg >= isa::regS0 && reg <= isa::regS7)
        return int(reg - isa::regS0);
    if (reg == isa::regFP)
        return 8;
    if (reg == isa::regRA)
        return 9;
    return -1;
}

void
LocalAnalysis::initFrame(FrameData &data,
                         const assem::FunctionInfo *info)
{
    data.regTags.fill(LocalTag::FuncInternal);
    data.regTags[isa::regGP] = LocalTag::GlbAddr;
    data.regTags[isa::regSP] = LocalTag::SP;
    const unsigned nargs = info ? info->numArgs : 0;
    for (unsigned i = 0; i < nargs; ++i)
        data.regTags[isa::regA0 + i] = LocalTag::Argument;
    data.unwritten = 0x3ff;     // all callee-saved slots + $fp + $ra
    data.savedMask = 0;
}

LocalCat
LocalAnalysis::categoryOfTag(LocalTag tag) const
{
    switch (tag) {
      case LocalTag::FuncInternal: return LocalCat::FuncInternal;
      case LocalTag::GlbAddr: return LocalCat::GlbAddrCalc;
      case LocalTag::SP: return LocalCat::SP;
      case LocalTag::Heap: return LocalCat::Heap;
      case LocalTag::Global: return LocalCat::Global;
      case LocalTag::RetVal: return LocalCat::RetVal;
      case LocalTag::Argument: return LocalCat::Argument;
    }
    panic("bad local tag");
}

LocalTag
LocalAnalysis::regionTagFor(uint32_t addr) const
{
    if (addr >= assem::Layout::dataBase && addr < heapStart_)
        return LocalTag::Global;
    if (addr >= heapStart_ && addr < assem::Layout::stackRegionBase)
        return LocalTag::Heap;
    return LocalTag::SP;    // stack region marker (not used as tag)
}

void
LocalAnalysis::count(LocalCat cat, bool repeated, uint32_t func_addr)
{
    if (!counting_)
        return;
    ++stats_.overall[unsigned(cat)];
    ++stats_.totalOverall;
    if (repeated) {
        ++stats_.repeated[unsigned(cat)];
        ++stats_.totalRepeated;
        if (cat == LocalCat::Prologue || cat == LocalCat::Epilogue)
            ++proEpiRepeatsByFunc_[func_addr];
    }
}

LocalCat
LocalAnalysis::onInstr(const sim::InstrRecord &rec, bool repeated)
{
    const Instruction &inst = *rec.inst;
    const isa::OpInfo &info = isa::opInfo(inst.op);
    FrameData &frame = stack_.current().data;
    const uint32_t func_addr = stack_.current().funcAddr;

    LocalCat cat;
    LocalTag dest_tag = LocalTag::FuncInternal;
    bool sets_dest_tag = rec.writesReg;

    const bool sp_adjust = inst.op == Op::ADDIU &&
                           inst.rt == isa::regSP &&
                           inst.rs == isa::regSP;

    if (sp_adjust) {
        cat = inst.imm < 0 ? LocalCat::Prologue : LocalCat::Epilogue;
        dest_tag = LocalTag::SP;
    } else if (inst.op == Op::JR && inst.rs == isa::regRA) {
        cat = LocalCat::Return;
    } else if (info.isStore) {
        const int slot = calleeSavedSlot(inst.rt);
        const bool sp_base = inst.rs == isa::regSP;
        if (sp_base && slot >= 0 && (frame.unwritten & (1u << slot))) {
            cat = LocalCat::Prologue;
            frame.savedMask |= uint16_t(1u << slot);
            frame.saveAddr[size_t(slot)] = rec.memAddr;
        } else {
            cat = categoryOfTag(frame.regTags[inst.rt]);
        }
        // Stack stores propagate the stored value's tag; stores to
        // global/heap do not (loads there start fresh slices).
        if (rec.memAddr >= assem::Layout::stackRegionBase) {
            stackTags_.fill(rec.memAddr, info.memBytes,
                            uint8_t(frame.regTags[inst.rt]));
        }
    } else if (info.isLoad) {
        const int slot = calleeSavedSlot(inst.rt);
        if (inst.rs == isa::regSP && slot >= 0 &&
            (frame.savedMask & (1u << slot)) &&
            frame.saveAddr[size_t(slot)] == rec.memAddr) {
            cat = LocalCat::Epilogue;
            dest_tag = LocalTag::FuncInternal;
        } else if (rec.memAddr >= assem::Layout::stackRegionBase) {
            // Stack load: propagate the stored tag.
            const auto tag =
                LocalTag(stackTags_.read(rec.memAddr));
            cat = categoryOfTag(tag);
            dest_tag = tag;
        } else {
            const LocalTag region = regionTagFor(rec.memAddr);
            cat = categoryOfTag(region);
            dest_tag = region;

            // Figure 6 bookkeeping: global+heap load value profile.
            if (counting_) {
                if (repeated) {
                    auto &values = loadValueRepeats_[rec.staticIndex];
                    if (uint64_t *n = values.find(uint32_t(rec.result)))
                        ++*n;
                    else if (values.size() < valueCapPerLoad)
                        values.tryEmplace(uint32_t(rec.result), 1);
                    ++totalGlobalLoadRepeats_;
                }
            }
        }
    } else if (inst.op == Op::LUI) {
        // Materializing the upper half of a data-segment address is
        // global address calculation; other lui's are plain constants.
        const uint32_t value = uint32_t(inst.imm) << 16;
        const bool data_addr =
            value >= (assem::Layout::dataBase & 0xffff0000u) &&
            value < assem::Layout::stackRegionBase;
        dest_tag = data_addr ? LocalTag::GlbAddr
                             : LocalTag::FuncInternal;
        cat = categoryOfTag(dest_tag);
    } else if (inst.op == Op::JAL || inst.op == Op::J ||
               inst.op == Op::JALR || inst.op == Op::SYSCALL ||
               inst.op == Op::BREAK) {
        cat = LocalCat::FuncInternal;
        dest_tag = LocalTag::FuncInternal;
    } else {
        // Supersede over register inputs; immediates are internal.
        LocalTag tag = LocalTag::FuncInternal;
        if (info.readsRs)
            tag = std::max(tag, frame.regTags[inst.rs]);
        if (info.readsRt)
            tag = std::max(tag, frame.regTags[inst.rt]);
        if (info.readsHi || info.readsLo) {
            // HI/LO inherit through the producing mult/div's dest tag
            // stored in hiLoTag_ (see below).
            tag = std::max(tag, hiLoTag_);
        }
        cat = categoryOfTag(tag);
        dest_tag = tag;
        if (info.writesHiLo)
            hiLoTag_ = tag;
    }

    if (sets_dest_tag && rec.destReg != isa::regZero)
        frame.regTags[rec.destReg] = dest_tag;

    // Track writes to callee-saved registers for prologue detection.
    if (rec.writesReg) {
        const int slot = calleeSavedSlot(rec.destReg);
        if (slot >= 0)
            frame.unwritten &= uint16_t(~(1u << slot));
    }

    count(cat, repeated, func_addr);

    // Maintain the shadow call stack *after* classification so the
    // jal/jr themselves are attributed to the caller.
    const int delta = stack_.onInstr(
        rec, [](const CallStack<FrameData>::Frame &,
                const CallStack<FrameData>::Frame &) {});
    if (delta > 0) {
        initFrame(stack_.current().data, stack_.current().info);
    } else if (delta < 0) {
        // Back in the caller: the callee's result arrives in $v0/$v1.
        FrameData &caller = stack_.current().data;
        caller.regTags[isa::regV0] = LocalTag::RetVal;
        caller.regTags[isa::regV1] = LocalTag::RetVal;
    }

    return cat;
}

std::vector<ProEpiContributor>
LocalAnalysis::topPrologueContributors(size_t n) const
{
    uint64_t total = stats_.repeated[unsigned(LocalCat::Prologue)] +
                     stats_.repeated[unsigned(LocalCat::Epilogue)];

    std::vector<std::pair<uint32_t, uint64_t>> rows(
        proEpiRepeatsByFunc_.begin(), proEpiRepeatsByFunc_.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto &a, const auto &b) {
                  return a.second > b.second;
              });

    std::vector<ProEpiContributor> out;
    for (size_t i = 0; i < rows.size() && i < n; ++i) {
        ProEpiContributor c;
        const assem::FunctionInfo *info =
            program_.functionAt(rows[i].first);
        c.name = info ? info->name : "<unknown>";
        c.staticInstructions = info ? info->size / 4 : 0;
        c.repeated = rows[i].second;
        c.share = total ? double(c.repeated) / double(total) : 0.0;
        out.push_back(std::move(c));
    }
    return out;
}

double
LocalAnalysis::loadValueCoverage(unsigned k) const
{
    if (!totalGlobalLoadRepeats_)
        return 0.0;
    uint64_t covered = 0;
    std::vector<uint64_t> counts;
    for (const auto &[static_index, values] : loadValueRepeats_) {
        counts.clear();
        counts.reserve(values.size());
        for (const auto &[value, repeats] : values)
            counts.push_back(repeats);
        std::sort(counts.begin(), counts.end(), std::greater<>());
        for (size_t i = 0; i < counts.size() && i < k; ++i)
            covered += counts[i];
    }
    return double(covered) / double(totalGlobalLoadRepeats_);
}

} // namespace irep::core
