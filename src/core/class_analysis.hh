/**
 * @file
 * Per-instruction-class total analysis. The paper notes (§2) that the
 * total analysis "can also be carried out for different types of
 * instructions, e.g., loads, stores, ALU operations, etc. (but we do
 * not do so in this paper)" — this module does exactly that, as the
 * natural extension: repetition rates broken down by instruction
 * class, which is what a class-filtered reuse buffer or load-value
 * predictor would care about.
 */

#ifndef IREP_CORE_CLASS_ANALYSIS_HH
#define IREP_CORE_CLASS_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <string_view>

#include "sim/observer.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** Coarse instruction classes. */
enum class InstrClass : uint8_t
{
    IntAlu,     //!< add/sub/logic/shift/slt/lui
    MulDiv,     //!< mult/div and HI/LO moves
    Load,
    Store,
    Branch,     //!< conditional control
    Jump,       //!< j/jal/jr/jalr
    Syscall,
    NUM,
};

constexpr unsigned numInstrClasses = unsigned(InstrClass::NUM);

/** Display name for a class. */
std::string_view instrClassName(InstrClass c);

/** Classify a decoded instruction. */
InstrClass classify(const isa::Instruction &inst);

/** Per-class dynamic and repetition counts. */
struct ClassStats
{
    std::array<uint64_t, numInstrClasses> overall = {};
    std::array<uint64_t, numInstrClasses> repeated = {};
    uint64_t totalOverall = 0;
    uint64_t totalRepeated = 0;

    /** Share of all dynamic instructions in this class. */
    double pctOfAll(InstrClass c) const;
    /** Share of this class that repeated (its propensity). */
    double propensity(InstrClass c) const;
    /** Share of all repetition contributed by this class. */
    double pctOfRepetition(InstrClass c) const;
};

/** The analysis: feed records + the tracker's repetition verdict. */
class ClassAnalysis
{
  public:
    void setCounting(bool enabled) { counting_ = enabled; }

    InstrClass onInstr(const sim::InstrRecord &rec, bool repeated);

    const ClassStats &stats() const { return stats_; }

    /** Register per-class counts and percentages into @p group; the
     *  analysis must outlive it. */
    void registerStats(stats::Group &group) const;

  private:
    ClassStats stats_;
    bool counting_ = false;
};

} // namespace irep::core

#endif // IREP_CORE_CLASS_ANALYSIS_HH
