/**
 * @file
 * Value prediction, the other hardware consumer of instruction
 * repetition the paper discusses (§7, refs [8, 9, 10, 14]). Three
 * classic predictors share a PC-indexed table:
 *
 *  - last-value  (Lipasti & Shen): predict the previous result
 *  - stride      (Gabbay & Mendelson): predict last + (last - prev)
 *  - context     (Sazeides & Smith, 2-level): hash the last N results
 *                into a second-level value table
 *
 * Comparing their accuracy against the reuse buffer's capture rate on
 * the same run quantifies the §7 observation that both mechanisms
 * mine the same underlying repetition.
 */

#ifndef IREP_CORE_VALUE_PREDICTION_HH
#define IREP_CORE_VALUE_PREDICTION_HH

#include <cstdint>
#include <vector>

#include "sim/observer.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** Geometry of the predictor tables. */
struct ValuePredictorConfig
{
    uint32_t entries = 8192;        //!< first-level, PC-indexed
    uint32_t contextEntries = 8192; //!< second-level value table
    unsigned historyDepth = 2;      //!< results hashed for context
                                    //!< (1..4)
};

/** Accuracy of one scheme. */
struct PredictorStats
{
    uint64_t eligible = 0;      //!< register-writing instructions
    uint64_t predictions = 0;   //!< table hit, prediction offered
    uint64_t correct = 0;

    /** Correct predictions as % of eligible instructions. */
    double pctOfEligible() const;
    /** Correct predictions as % of offered predictions. */
    double accuracy() const;
};

class ValuePrediction
{
  public:
    explicit ValuePrediction(
        const ValuePredictorConfig &config = ValuePredictorConfig());

    void setCounting(bool enabled) { counting_ = enabled; }

    /** Observe one retired instruction (predict-then-update). */
    void onInstr(const sim::InstrRecord &rec, bool repeated);

    const PredictorStats &lastValue() const { return last_; }
    const PredictorStats &stride() const { return stride_; }
    const PredictorStats &context() const { return context_; }
    const ValuePredictorConfig &config() const { return config_; }

    /** Register per-scheme accuracy statistics into @p group; the
     *  predictor must outlive it. */
    void registerStats(stats::Group &group) const;

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t pc = 0;
        uint32_t last = 0;
        int32_t strideValue = 0;
        bool strideValid = false;
        uint32_t hist[4] = {};      //!< last historyDepth results
        uint8_t histLen = 0;
    };

    struct ContextEntry
    {
        bool valid = false;
        uint64_t historyTag = 0;
        uint32_t value = 0;
    };

    ValuePredictorConfig config_;
    std::vector<Entry> table_;
    std::vector<ContextEntry> values_;
    PredictorStats last_;
    PredictorStats stride_;
    PredictorStats context_;
    bool counting_ = false;
};

} // namespace irep::core

#endif // IREP_CORE_VALUE_PREDICTION_HH
