/**
 * @file
 * Local analysis (paper §5.3): bin every dynamic instruction into one
 * of ten within-function categories, by task performed (prologue,
 * epilogue, global address calculation, return, SP manipulation) and
 * by data source (function internals, return values, arguments,
 * global, heap), using the supersede rule
 *   argument >s return-value >s global >s heap >s (SP, glb-addr)
 *     >s function-internal.
 *
 * Classification rules (documented here because several are judgment
 * calls the paper leaves implicit; see DESIGN.md):
 *  - sp += imm adjusts are prologue (negative) / epilogue (positive)
 *  - a store of a not-yet-written callee-saved register (or $ra) to
 *    the stack is prologue; the matching reload is epilogue
 *  - jr $ra is the return category
 *  - other stores take the category of the *stored value*
 *  - loads from the data segment start a fresh `global` slice, loads
 *    from the sbrk region a fresh `heap` slice, and stack loads
 *    propagate the tag the store wrote (so spilled argument values
 *    stay argument-tagged)
 *  - everything else supersedes over its register input tags; lui of
 *    a data-segment address and arithmetic on $gp produce the
 *    glb-addr-calc tag
 *
 * Produces Tables 5/6/7, the per-function prologue+epilogue ranking of
 * Table 9, and the load-value specialization coverage of Figure 6.
 */

#ifndef IREP_CORE_LOCAL_ANALYSIS_HH
#define IREP_CORE_LOCAL_ANALYSIS_HH

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "asm/program.hh"
#include "core/callstack.hh"
#include "core/tag_memory.hh"
#include "sim/observer.hh"
#include "support/flat_map.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** The ten categories of Table 5 (paper order). */
enum class LocalCat : uint8_t
{
    Prologue,
    Epilogue,
    FuncInternal,
    GlbAddrCalc,
    Return,
    SP,
    RetVal,
    Argument,
    Global,
    Heap,
    NUM,
};

constexpr unsigned numLocalCats = unsigned(LocalCat::NUM);

/** Display name matching the paper's tables. */
std::string_view localCatName(LocalCat cat);

/** Value tags, ascending supersede priority. */
enum class LocalTag : uint8_t
{
    FuncInternal = 0,
    GlbAddr = 1,
    SP = 2,
    Heap = 3,
    Global = 4,
    RetVal = 5,
    Argument = 6,
};

/** Tables 5-7 contents. */
struct LocalStats
{
    std::array<uint64_t, numLocalCats> overall = {};
    std::array<uint64_t, numLocalCats> repeated = {};
    uint64_t totalOverall = 0;
    uint64_t totalRepeated = 0;

    double pctOverall(LocalCat cat) const;
    double pctRepeated(LocalCat cat) const;
    double propensity(LocalCat cat) const;
};

/** One Table 9 row: a top prologue+epilogue contributor. */
struct ProEpiContributor
{
    std::string name;
    uint32_t staticInstructions = 0;    //!< function size
    uint64_t repeated = 0;              //!< pro+epi repeats from it
    double share = 0.0;                 //!< of all pro+epi repetition
};

class LocalAnalysis
{
  public:
    explicit LocalAnalysis(const assem::Program &program);

    void setCounting(bool enabled) { counting_ = enabled; }

    /**
     * Process a retired instruction.
     * @param repeated Repetition-tracker verdict for this instance.
     * @return the category it was binned into.
     */
    LocalCat onInstr(const sim::InstrRecord &rec, bool repeated);

    const LocalStats &stats() const { return stats_; }

    /** Register Tables 5-7 statistics (per-category counts and
     *  percentages) into @p group; the analysis must outlive it. */
    void registerStats(stats::Group &group) const;

    /** Table 9: the top @p n prologue+epilogue contributors. */
    std::vector<ProEpiContributor>
    topPrologueContributors(size_t n) const;

    /**
     * Figure 6: fraction of global+heap load repetition covered when
     * every such static load is specialized for its @p k most
     * frequently repeated values.
     */
    double loadValueCoverage(unsigned k) const;

    /** Current call-stack depth (exposed for tests). */
    size_t stackDepth() const { return stack_.depth(); }

  private:
    struct FrameData
    {
        std::array<LocalTag, 32> regTags;
        uint16_t unwritten = 0;     //!< s0..s7 -> bits 0..7, fp=8, ra=9
        uint16_t savedMask = 0;
        std::array<uint32_t, 10> saveAddr = {};
    };

    void initFrame(FrameData &data, const assem::FunctionInfo *info);
    static int calleeSavedSlot(unsigned reg);
    LocalCat categoryOfTag(LocalTag tag) const;
    LocalTag regionTagFor(uint32_t addr) const;
    void count(LocalCat cat, bool repeated, uint32_t func_addr);

    const assem::Program &program_;
    CallStack<FrameData> stack_;
    TagMemory stackTags_;
    uint32_t heapStart_;
    LocalTag hiLoTag_ = LocalTag::FuncInternal;

    LocalStats stats_;
    bool counting_ = false;

    // Table 9: per-function prologue+epilogue repetition.
    FlatMap<uint32_t, uint64_t> proEpiRepeatsByFunc_;

    // Figure 6: per static global/heap load, value -> repeat count.
    static constexpr size_t valueCapPerLoad = 4096;
    FlatMap<uint32_t, FlatMap<uint32_t, uint64_t>> loadValueRepeats_;
    uint64_t totalGlobalLoadRepeats_ = 0;
};

} // namespace irep::core

#endif // IREP_CORE_LOCAL_ANALYSIS_HH
