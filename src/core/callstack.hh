/**
 * @file
 * A shadow call stack reconstructed from the retired instruction
 * stream (jal/jalr push, jr-to-return-address pops). The local and
 * function-level analyses both attach per-frame state to it.
 */

#ifndef IREP_CORE_CALLSTACK_HH
#define IREP_CORE_CALLSTACK_HH

#include <cstdint>
#include <vector>

#include "asm/program.hh"
#include "isa/registers.hh"
#include "sim/observer.hh"

namespace irep::core
{

/**
 * Tracks the dynamic call stack.
 *
 * @tparam FrameData Per-frame payload attached by the client analysis.
 */
template <typename FrameData>
class CallStack
{
  public:
    struct Frame
    {
        uint32_t funcAddr = 0;      //!< callee entry pc
        uint32_t returnAddr = 0;    //!< pc the callee returns to
        const assem::FunctionInfo *info = nullptr;
        FrameData data;
    };

    explicit CallStack(const assem::Program &program)
        : program_(program)
    {
        // Synthetic root frame so depth is never zero.
        frames_.emplace_back();
        frames_.back().funcAddr = program.entry;
        frames_.back().info = program.functionAt(program.entry);
    }

    /**
     * Feed one retired instruction.
     *
     * @param rec    The retired instruction.
     * @param on_pop Invoked as on_pop(popped_frame, parent_frame) for
     *               each frame popped by a return, innermost first
     *               (lets clients propagate per-frame state upward).
     * @return +1 when a call was pushed, -1 when a return popped at
     *         least one frame, 0 otherwise. After a push the new frame
     *         is current; clients initialize its data via current().
     */
    template <typename PopFn>
    int
    onInstr(const sim::InstrRecord &rec, PopFn &&on_pop)
    {
        const isa::Instruction &inst = *rec.inst;
        const isa::OpInfo &info = isa::opInfo(inst.op);
        if (info.isCall) {
            Frame f;
            f.funcAddr = rec.nextPc;
            f.returnAddr = rec.pc + 4;
            f.info = program_.functionAt(rec.nextPc);
            frames_.push_back(std::move(f));
            return 1;
        }
        if (inst.op == isa::Op::JR && inst.rs == isa::regRA) {
            // Pop every frame whose return address matches; tolerate
            // mismatches (e.g. when the window started mid-call) by
            // scanning downward for a matching frame.
            for (size_t i = frames_.size(); i-- > 1;) {
                if (frames_[i].returnAddr == rec.nextPc) {
                    while (frames_.size() > i) {
                        Frame popped = std::move(frames_.back());
                        frames_.pop_back();
                        on_pop(popped, frames_.empty()
                                           ? popped
                                           : frames_.back());
                    }
                    return -1;
                }
            }
            return 0;
        }
        return 0;
    }

    /** onInstr() without a pop callback. */
    int
    onInstr(const sim::InstrRecord &rec)
    {
        return onInstr(rec,
                       [](const Frame &, const Frame &) {});
    }

    Frame &current() { return frames_.back(); }
    const Frame &current() const { return frames_.back(); }

    /** Parent of the current frame (the root frame is its own
     *  parent). */
    Frame &
    parent()
    {
        return frames_.size() > 1 ? frames_[frames_.size() - 2]
                                  : frames_.front();
    }

    size_t depth() const { return frames_.size(); }

    std::vector<Frame> &frames() { return frames_; }

  private:
    const assem::Program &program_;
    std::vector<Frame> frames_;
};

} // namespace irep::core

#endif // IREP_CORE_CALLSTACK_HH
