#include "core/value_prediction.hh"

#include "support/hash.hh"
#include "support/logging.hh"
#include "support/stats.hh"

namespace irep::core
{

double
PredictorStats::pctOfEligible() const
{
    return eligible ? 100.0 * double(correct) / double(eligible) : 0.0;
}

double
PredictorStats::accuracy() const
{
    return predictions ? 100.0 * double(correct) / double(predictions)
                       : 0.0;
}

namespace
{

void
registerScheme(stats::Group &group, const PredictorStats &scheme)
{
    group.scalar("eligible", "register-writing instructions seen",
                 [&scheme] { return double(scheme.eligible); });
    group.scalar("predictions", "predictions offered",
                 [&scheme] { return double(scheme.predictions); });
    group.scalar("correct", "correct predictions",
                 [&scheme] { return double(scheme.correct); });
    group.scalar("pct_of_eligible",
                 "correct predictions as % of eligible instructions",
                 [&scheme] { return scheme.pctOfEligible(); });
    group.scalar("accuracy",
                 "correct predictions as % of offered predictions",
                 [&scheme] { return scheme.accuracy(); });
}

} // namespace

void
ValuePrediction::registerStats(stats::Group &group) const
{
    registerScheme(group.group("last_value"), last_);
    registerScheme(group.group("stride"), stride_);
    registerScheme(group.group("context"), context_);
}

ValuePrediction::ValuePrediction(const ValuePredictorConfig &config)
    : config_(config), table_(config.entries),
      values_(config.contextEntries)
{
    fatalIf(config.entries == 0 ||
                (config.entries & (config.entries - 1)) != 0,
            "predictor entries must be a power of two");
    fatalIf(config.contextEntries == 0 ||
                (config.contextEntries &
                 (config.contextEntries - 1)) != 0,
            "context entries must be a power of two");
    fatalIf(config.historyDepth == 0 || config.historyDepth > 4,
            "history depth must be in [1, 4]");
}

void
ValuePrediction::onInstr(const sim::InstrRecord &rec, bool repeated)
{
    (void)repeated;
    if (!counting_ || !rec.writesReg)
        return;
    const uint32_t result = uint32_t(rec.result);

    ++last_.eligible;
    ++stride_.eligible;
    ++context_.eligible;

    Entry &e = table_[(rec.pc >> 2) & (config_.entries - 1)];
    const bool hit = e.valid && e.pc == rec.pc;

    // Hash of the finite value history (FCM-style): recurring value
    // contexts map to the same second-level slot.
    auto history_hash = [](const Entry &entry) {
        uint64_t h = 0x2545f4914f6cdd1dull;
        for (unsigned i = 0; i < entry.histLen; ++i)
            h = hashMix(h, entry.hist[i]);
        return h;
    };

    uint32_t old_last = 0;
    uint64_t pre_history = 0;
    bool have_history = false;
    if (hit) {
        old_last = e.last;

        // Last-value scheme.
        ++last_.predictions;
        if (e.last == result)
            ++last_.correct;

        // Stride scheme: value + learned stride.
        if (e.strideValid) {
            ++stride_.predictions;
            if (uint32_t(int32_t(e.last) + e.strideValue) == result)
                ++stride_.correct;
        }

        // Context scheme: the recent-result history selects a value.
        if (e.histLen == config_.historyDepth) {
            pre_history = history_hash(e);
            have_history = true;
            ContextEntry &c =
                values_[(pre_history ^ (rec.pc >> 2)) &
                        (config_.contextEntries - 1)];
            if (c.valid && c.historyTag == pre_history) {
                ++context_.predictions;
                if (c.value == result)
                    ++context_.correct;
            }
        }
    }

    // Update (allocate on miss, learn on hit).
    if (!hit) {
        e.valid = true;
        e.pc = rec.pc;
        e.last = result;
        e.strideValid = false;
        e.hist[0] = result;
        e.histLen = 1;
        return;
    }

    e.strideValue = int32_t(result) - int32_t(old_last);
    e.strideValid = true;
    e.last = result;

    // Train the context table under the pre-update history, then
    // shift the new result into the finite history window.
    if (have_history) {
        ContextEntry &c = values_[(pre_history ^ (rec.pc >> 2)) &
                                  (config_.contextEntries - 1)];
        c.valid = true;
        c.historyTag = pre_history;
        c.value = result;
    }
    const unsigned depth = config_.historyDepth;
    if (e.histLen < depth) {
        e.hist[e.histLen++] = result;
    } else {
        for (unsigned i = 1; i < depth; ++i)
            e.hist[i - 1] = e.hist[i];
        e.hist[depth - 1] = result;
    }
}

} // namespace irep::core
