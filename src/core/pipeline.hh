/**
 * @file
 * AnalysisPipeline: attaches every analysis to a Machine and runs the
 * paper's skip-then-measure protocol (§3). Data-flow state (taint
 * tags, call stack, frame tags) is kept warm during the skip phase;
 * repetition buffering and all counters only run inside the
 * measurement window, exactly like the paper's setup.
 */

#ifndef IREP_CORE_PIPELINE_HH
#define IREP_CORE_PIPELINE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "core/attribution.hh"
#include "core/class_analysis.hh"
#include "core/function_analysis.hh"
#include "core/global_taint.hh"
#include "core/local_analysis.hh"
#include "core/repetition_tracker.hh"
#include "core/reuse_buffer.hh"
#include "core/value_prediction.hh"
#include "sim/machine.hh"
#include "sim/observer.hh"
#include "sim/replay.hh"
#include "sim/trace.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

class ShardedWindow;

/** Wall-clock measurement of one execution phase. */
struct PhaseTiming
{
    uint64_t instructions = 0;
    double seconds = 0.0;

    /** Simulated throughput, in millions of instructions/second. */
    double
    mips() const
    {
        return seconds > 0.0
            ? double(instructions) / seconds / 1e6 : 0.0;
    }
};

/** Timing of a full skip + window run. */
struct RunTiming
{
    PhaseTiming skip;
    PhaseTiming window;
};

/** Pipeline configuration. */
struct PipelineConfig
{
    uint64_t skipInstructions = 0;
    uint64_t windowInstructions = 5'000'000;
    unsigned instanceCap = 2000;    //!< paper: 2000 per static instr

    /**
     * Worker threads sharding the analyses within the window
     * (core/shard.hh). 0 resolves `IREP_WINDOW_JOBS` (default 1);
     * 1 is today's serial dispatch, byte-for-byte. Always clamped to
     * the enabled-analysis count; never serialized into stats JSON,
     * because the output is identical at any value.
     */
    unsigned windowJobs = 0;

    bool enableGlobal = true;
    bool enableLocal = true;
    bool enableFunction = true;
    bool enableReuse = true;
    bool enableClass = true;
    bool enableValuePrediction = true;
    bool enableAttribution = true;

    ReuseConfig reuse;
    ValuePredictorConfig predictor;
};

/**
 * Apply a comma-separated analysis set to @p config: exactly the named
 * analyses are enabled, everything else off. Valid names are `global`,
 * `local`, `functions`, `reuse`, `classes`, `prediction`,
 * `attribution`, plus `tracker` (accepted but always on — repetition
 * tracking is the measurement itself) and `all`. Shared by the CLI
 * `--analyses` flag and the daemon's "analyses" request field.
 *
 * @return false (with @p error set, when non-null) on an unknown or
 *         empty name; @p config is untouched on failure.
 */
bool applyAnalysisSet(std::string_view set, PipelineConfig &config,
                      std::string *error = nullptr);

/**
 * Runs a machine under full instrumentation. Construct, call run(),
 * then query the per-analysis results.
 */
class AnalysisPipeline : public sim::Observer
{
  public:
    AnalysisPipeline(sim::Machine &machine,
                     const PipelineConfig &config = PipelineConfig());

    /** Detaches from the machine, so a pipeline may be destroyed
     *  while its machine lives (e.g. re-analysis under a fresh
     *  config) without leaving a dangling observer. */
    ~AnalysisPipeline() override;

    /** Execute skip + window. @return instructions executed in the
     *  measurement window. */
    uint64_t run();

    /**
     * Verification mode: identical protocol to run(), but drives the
     * machine one step() at a time instead of through the fused run
     * loop. Exists so tests can check the two execution paths produce
     * identical architectural state and statistics.
     */
    uint64_t runStepwise();

    /**
     * Run the identical skip + window protocol off a recorded trace:
     * @p source dispatches records straight into this observer, so
     * the machine never executes and every analysis sees the exact
     * stream the live run produced. The source must have been bound
     * to this pipeline's machine (call-site register write-back).
     */
    uint64_t runFromSource(sim::ReplaySource &source);

    void onRetire(const sim::InstrRecord &rec) override;
    void onSyscall(const sim::SyscallRecord &rec) override;

    const RepetitionTracker &tracker() const { return *tracker_; }
    const GlobalTaint &taint() const { return *taint_; }
    const LocalAnalysis &local() const { return *local_; }
    const FunctionAnalysis &functions() const { return *functions_; }
    const ReuseBuffer &reuse() const { return *reuse_; }
    const ClassAnalysis &classes() const { return *classes_; }
    const ValuePrediction &prediction() const { return *prediction_; }
    const RepetitionAttributionAnalysis &attribution() const
    {
        return *attribution_;
    }

    const sim::Machine &machine() const { return machine_; }
    const PipelineConfig &config() const { return config_; }

    /** Wall-clock timing of the last run() (skip and window). */
    const RunTiming &timing() const { return timing_; }

    /** Report phase transitions ("skip" / "window") to @p meter while
     *  run() executes. Not owned; pass nullptr to detach. */
    void setProgress(sim::ProgressMeter *meter) { progress_ = meter; }

    /**
     * Register the whole run's statistics into @p root: a `run` group
     * (per-phase instruction counts, wall-clock seconds and simulated
     * MIPS) plus one group per enabled analysis. Derived stats read
     * live values, so the pipeline must outlive @p root. Call after
     * run().
     */
    void registerStats(stats::Group &root) const;

    /**
     * Sampled per-analysis window cost, filled when the profiler
     * (support/prof.hh) is enabled during run(): every Nth retire in
     * the measurement window is dispatched with a clock read around
     * each analysis, attributing window cost per analysis without
     * slowing the other N-1 retires. Estimates, not exact — each
     * sample carries the clock-read overhead — but the *shares* are
     * what sharding decisions need.
     */
    struct ProfSample
    {
        static constexpr unsigned numAnalyses = 8;
        static constexpr uint32_t interval = 512;
        uint64_t ns[numAnalyses] = {};
        uint64_t samples = 0;
    };

    /** Analysis name for ProfSample::ns[i] ("tracker", "taint", …). */
    static const char *profAnalysisName(unsigned i);

    const ProfSample &profSample() const { return profSample_; }

    /**
     * The window-shard count this pipeline would actually use:
     * config().windowJobs resolved against `IREP_WINDOW_JOBS` and
     * clamped to 1 + the number of enabled non-tracker analyses
     * (extra workers would sit idle). 1 means serial dispatch.
     */
    unsigned effectiveWindowJobs() const;

  private:
    friend class ShardedWindow;

    void setCounting(bool enabled);

    /** The every-Nth-retire dispatch with per-analysis timing. */
    void onRetireSampled(const sim::InstrRecord &rec);

    /** Publish sampled attribution as profiler counters; returns the
     *  per-analysis estimated window cost as span args. */
    void publishProf(uint64_t window_start_ns);

    /** Shared skip/window protocol; @p exec executes up to its
     *  argument's worth of instructions and returns the count done.
     *  @p allow_sharding gates the sharded window (runStepwise() and
     *  other single-thread verification paths keep it off). */
    template <typename Exec>
    uint64_t runPhases(Exec &&exec, bool allow_sharding);

    sim::Machine &machine_;
    PipelineConfig config_;
    bool counting_ = false;
    RunTiming timing_;
    sim::ProgressMeter *progress_ = nullptr;

    bool profiling_ = false;    //!< prof::enabled(), cached per run()
    uint32_t profTick_ = 0;
    ProfSample profSample_;

    /** Live only inside a sharded runPhases(); onRetire()/onSyscall()
     *  enqueue instead of dispatching while it is set. */
    std::unique_ptr<ShardedWindow> shard_;

    std::unique_ptr<RepetitionTracker> tracker_;
    std::unique_ptr<GlobalTaint> taint_;
    std::unique_ptr<LocalAnalysis> local_;
    std::unique_ptr<FunctionAnalysis> functions_;
    std::unique_ptr<ReuseBuffer> reuse_;
    std::unique_ptr<ClassAnalysis> classes_;
    std::unique_ptr<ValuePrediction> prediction_;
    std::unique_ptr<RepetitionAttributionAnalysis> attribution_;
};

} // namespace irep::core

#endif // IREP_CORE_PIPELINE_HH
