#include "core/reuse_buffer.hh"

#include <algorithm>

#include "support/logging.hh"
#include "support/stats.hh"

namespace irep::core
{

double
ReuseStats::pctOfAll() const
{
    return totalInstructions
        ? 100.0 * double(hits) / double(totalInstructions) : 0.0;
}

double
ReuseStats::pctOfRepeated() const
{
    return repeatedInstructions
        ? 100.0 * double(hits) / double(repeatedInstructions) : 0.0;
}

void
ReuseBuffer::registerStats(stats::Group &group) const
{
    group.scalar("entries", "buffer entries",
                 [this] { return double(config_.entries); });
    group.scalar("ways", "buffer associativity",
                 [this] { return double(config_.ways); });
    group.scalar("accesses", "instructions offered to the buffer",
                 [this] { return double(stats_.accesses); });
    group.scalar("hits", "reused instructions",
                 [this] { return double(stats_.hits); });
    group.scalar("invalidations",
                 "load entries killed by stores",
                 [this] { return double(stats_.invalidations); });
    group.scalar("pct_of_all",
                 "% of all dynamic instructions reused (Table 10)",
                 [this] { return stats_.pctOfAll(); });
    group.scalar("pct_of_repeated",
                 "% of repeated instructions reused (Table 10)",
                 [this] { return stats_.pctOfRepeated(); });
}

ReuseBuffer::ReuseBuffer(const ReuseConfig &config)
    : config_(config), entries_(config.entries)
{
    fatalIf(config.ways == 0 || config.entries == 0 ||
                config.entries % config.ways != 0,
            "reuse buffer entries must be a multiple of ways");
    const uint32_t sets = config.sets();
    fatalIf((sets & (sets - 1)) != 0,
            "reuse buffer set count must be a power of two");
}

void
ReuseBuffer::invalidateLoads(uint32_t addr, uint32_t bytes)
{
    // Stores can straddle at most two words only for unaligned halves;
    // our ISA enforces natural alignment, so one or two words cover
    // every case.
    const uint32_t first = addr & ~3u;
    const uint32_t last = (addr + bytes - 1) & ~3u;
    for (uint32_t word = first; word <= last; word += 4) {
        auto it = loadIndex_.find(word);
        if (it == loadIndex_.end())
            continue;
        for (uint32_t index : it->second) {
            Entry &e = entries_[index];
            if (e.valid && e.isLoad && e.memAddr == word) {
                e.valid = false;
                if (counting_)
                    ++stats_.invalidations;
            }
        }
        loadIndex_.erase(it);
    }
}

bool
ReuseBuffer::onInstr(const sim::InstrRecord &rec, bool repeated)
{
    const isa::Instruction &inst = *rec.inst;
    const isa::OpInfo &info = isa::opInfo(inst.op);
    ++clock_;

    if (counting_) {
        ++stats_.totalInstructions;
        if (repeated)
            ++stats_.repeatedInstructions;
    }

    if (info.isStore) {
        invalidateLoads(rec.memAddr, info.memBytes);
        return false;
    }
    // Stores are handled above; syscalls have side effects and are
    // never reused.
    if (inst.op == isa::Op::SYSCALL || inst.op == isa::Op::BREAK)
        return false;

    if (counting_)
        ++stats_.accesses;

    const uint32_t sets = config_.sets();
    const uint32_t set = (rec.pc >> 2) & (sets - 1);
    Entry *base = &entries_[set * config_.ways];

    for (uint32_t w = 0; w < config_.ways; ++w) {
        Entry &e = base[w];
        if (!e.valid || e.pc != rec.pc || e.numSrc != rec.numSrcRegs)
            continue;
        bool match = true;
        for (int i = 0; i < rec.numSrcRegs; ++i) {
            if (e.src[i] != rec.srcVal[i]) {
                match = false;
                break;
            }
        }
        // A load entry is only reusable while its address is untouched
        // by stores (invalidation handles that) and the access address
        // matches.
        if (match && e.isLoad && e.memAddr != (rec.memAddr & ~3u))
            match = false;
        if (match && e.result == rec.result) {
            e.lastUse = clock_;
            if (counting_)
                ++stats_.hits;
            return true;
        }
    }

    // Victim selection: first invalid way, else least recently used.
    Entry *lru = base;
    for (uint32_t w = 0; w < config_.ways; ++w) {
        Entry &e = base[w];
        if (!e.valid) {
            lru = &e;
            break;
        }
        if (e.lastUse < lru->lastUse)
            lru = &e;
    }

    // Miss: install (replacing the LRU way).
    lru->valid = true;
    lru->pc = rec.pc;
    lru->numSrc = rec.numSrcRegs;
    lru->src[0] = rec.srcVal[0];
    lru->src[1] = rec.srcVal[1];
    lru->result = rec.result;
    lru->isLoad = info.isLoad;
    lru->lastUse = clock_;
    if (info.isLoad) {
        lru->memAddr = rec.memAddr & ~3u;
        auto &index_list = loadIndex_[lru->memAddr];
        // Entries are removed lazily; compact the list of stale
        // references before it can grow without bound (a load that is
        // repeatedly evicted and reinstalled with no intervening
        // store would otherwise accumulate duplicates).
        if (index_list.size() >= 8) {
            std::erase_if(index_list, [this, lru](uint32_t i) {
                const Entry &e = entries_[i];
                return !(e.valid && e.isLoad &&
                         e.memAddr == lru->memAddr);
            });
        }
        index_list.push_back(uint32_t(lru - entries_.data()));
    } else {
        lru->memAddr = 0;
    }
    return false;
}

} // namespace irep::core
