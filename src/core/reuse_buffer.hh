/**
 * @file
 * A value-based (Sv) dynamic instruction reuse buffer, the hardware
 * mechanism of Sodani & Sohi [ISCA'97] that the paper's Table 10
 * measures: a PC-indexed set-associative buffer holding operand values
 * and results. An instruction whose operands match a buffered entry is
 * *reused*; load entries are invalidated by stores to their address.
 * Default geometry matches the paper: 8K entries, 4-way.
 */

#ifndef IREP_CORE_REUSE_BUFFER_HH
#define IREP_CORE_REUSE_BUFFER_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sim/observer.hh"

namespace irep::stats
{
class Group;
}

namespace irep::core
{

/** Reuse-buffer geometry. */
struct ReuseConfig
{
    uint32_t entries = 8192;
    uint32_t ways = 4;

    uint32_t sets() const { return entries / ways; }
};

/** Table 10 contents. */
struct ReuseStats
{
    uint64_t accesses = 0;      //!< instructions offered to the buffer
    uint64_t hits = 0;          //!< reused instructions
    uint64_t invalidations = 0; //!< load entries killed by stores
    uint64_t totalInstructions = 0;
    uint64_t repeatedInstructions = 0;

    /** % of all dynamic instructions captured (Table 10 col 2). */
    double pctOfAll() const;
    /** % of repeated instructions captured (Table 10 col 3). */
    double pctOfRepeated() const;
};

class ReuseBuffer
{
  public:
    explicit ReuseBuffer(const ReuseConfig &config = ReuseConfig());

    void setCounting(bool enabled) { counting_ = enabled; }

    /**
     * Process a retired instruction.
     * @param repeated Repetition-tracker verdict (for the Table 10
     *                 "% of repeated" denominator).
     * @return true when the instruction hit in the buffer (reused).
     */
    bool onInstr(const sim::InstrRecord &rec, bool repeated);

    const ReuseStats &stats() const { return stats_; }
    const ReuseConfig &config() const { return config_; }

    /** Register Table 10 statistics and the buffer geometry into
     *  @p group; the buffer must outlive it. */
    void registerStats(stats::Group &group) const;

  private:
    struct Entry
    {
        bool valid = false;
        uint32_t pc = 0;
        uint8_t numSrc = 0;
        uint32_t src[2] = {0, 0};
        uint64_t result = 0;
        bool isLoad = false;
        uint32_t memAddr = 0;   //!< word-aligned address for loads
        uint64_t lastUse = 0;   //!< LRU stamp
    };

    void invalidateLoads(uint32_t addr, uint32_t bytes);

    ReuseConfig config_;
    std::vector<Entry> entries_;    //!< sets * ways, row-major
    // Word address -> indices of load entries at that address (for
    // O(1) store invalidation). Entries are removed lazily.
    std::unordered_map<uint32_t, std::vector<uint32_t>> loadIndex_;
    ReuseStats stats_;
    uint64_t clock_ = 0;
    bool counting_ = false;
};

} // namespace irep::core

#endif // IREP_CORE_REUSE_BUFFER_HH
