/**
 * @file
 * ShardedWindow: fans one retire stream out to per-analysis worker
 * threads (`--window-jobs N`), keeping every reported statistic
 * byte-identical to serial dispatch.
 *
 * Topology — a two-stage pipeline over bounded SPSC rings
 * (support/spsc.hh):
 *
 *     producer ──ring──► tracker worker ──ring──► consumer worker 1
 *     (run loop /         (repetition        ├───► consumer worker 2
 *      trace decoder)      tracker)          └───► ...
 *
 * The producer thread (the fused Machine::run() loop or the trace
 * replay decoder, via AnalysisPipeline::onRetire) appends records
 * into batches and pushes each full batch to the tracker worker. The
 * tracker must run first because every other analysis consumes its
 * `repeated` verdict; once the tracker worker has annotated a batch
 * it is immutable, and the worker fans the same std::shared_ptr out
 * to every consumer ring — each ring still has exactly one producer
 * (the tracker worker) and one consumer, so the SPSC contract holds.
 * Consumer workers own disjoint subsets of the remaining analyses
 * (taint / local / functions / reuse / classes / prediction /
 * attribution, round-robin), so all analysis state stays
 * thread-confined.
 *
 * Determinism: every analysis sees exactly the record sequence serial
 * dispatch would have shown it, in order. Batches never straddle a
 * phase boundary; endPhase() flushes, pushes a phase-end sentinel,
 * and blocks until every worker's processed-batch counter matches the
 * produced count. After that barrier the workers are quiescent, so
 * counting transitions, finalize(), profiler merging, and
 * registerStats() all run race-free on the calling thread.
 *
 * Concurrency fixes baked into the design (the bugs serial dispatch
 * masked):
 *  - FunctionAnalysis samples SP/argument registers at call retires;
 *    off-thread those registers have long moved on. The producer
 *    snapshots them into the batch entry (CallRegs) at enqueue time.
 *  - Sampled profiling attribution happens on the worker that runs
 *    the analysis (the producer only marks every Nth counting retire),
 *    and per-worker nanosecond slots merge at the barrier.
 *  - Worker phase spans are recorded from the worker's own thread, so
 *    the profiler attributes them to the correct tid row.
 */

#ifndef IREP_CORE_SHARD_HH
#define IREP_CORE_SHARD_HH

#include <atomic>
#include <cstdint>
#include <exception>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/function_analysis.hh"
#include "core/pipeline.hh"
#include "sim/observer.hh"
#include "support/spsc.hh"

namespace irep::core
{

class ShardedWindow
{
  public:
    /**
     * Resolve the requested window-shard count: a non-zero
     * @p configured value wins, otherwise `IREP_WINDOW_JOBS` (strictly
     * parsed, 0 is fatal), otherwise 1 (serial).
     */
    static unsigned resolveJobs(unsigned configured);

    /**
     * Spin up @p jobs worker threads (1 tracker + jobs-1 consumers)
     * for @p pipe. @p jobs must be >= 2 and is expected to already be
     * clamped to the enabled-analysis count
     * (AnalysisPipeline::effectiveWindowJobs()).
     */
    ShardedWindow(AnalysisPipeline &pipe, unsigned jobs,
                  bool profiling);

    /** Closes the rings and joins every worker. */
    ~ShardedWindow();

    ShardedWindow(const ShardedWindow &) = delete;
    ShardedWindow &operator=(const ShardedWindow &) = delete;

    /** Worker threads in use (tracker included). */
    unsigned jobs() const { return 1 + unsigned(consumers_.size()); }

    /** Producer only: append one retired instruction. */
    void enqueueRetire(const sim::InstrRecord &rec);

    /** Producer only: append one completed syscall. */
    void enqueueSyscall(const sim::SyscallRecord &rec);

    /** Producer only: the next records belong to a new phase with the
     *  given counting mode. Call only at a quiescent point (after
     *  construction or endPhase()). */
    void beginPhase(bool counting);

    /**
     * Producer only: flush pending records, push the phase-end
     * sentinel, and block until every worker has drained everything —
     * the deterministic barrier. Rethrows the first worker exception,
     * if any. On return the workers are parked and the analyses may be
     * read or reconfigured from the calling thread.
     */
    void endPhase();

    /** Producer only, after endPhase(): fold the workers' sampled
     *  per-analysis nanoseconds and the producer's sample count into
     *  @p into, then zero the worker slots. */
    void mergeProf(AnalysisPipeline::ProfSample &into);

  private:
    struct Entry
    {
        enum class Kind : uint8_t { Instr, Syscall };

        sim::InstrRecord rec;
        sim::SyscallRecord sys = {};
        CallRegs callRegs;
        Kind kind = Kind::Instr;
        bool sampled = false;       //!< timed dispatch on the workers
        bool hasCallRegs = false;
        bool repeated = false;      //!< tracker verdict (stage 0)
    };

    struct Batch
    {
        std::vector<Entry> entries;
        bool counting = false;
        bool phaseEnd = false;
    };

    using BatchPtr = std::shared_ptr<Batch>;

    /** Analyses a consumer worker can own; numeric value + 1 is the
     *  ProfSample slot (0 is the tracker's). */
    enum class Which : uint8_t
    {
        Taint, Local, Functions, Reuse, Classes, Prediction,
        Attribution
    };

    struct Worker
    {
        explicit Worker(size_t ring_depth) : ring(ring_depth) {}

        parallel::SpscRing<BatchPtr> ring;
        std::vector<Which> owned;       //!< empty for the tracker
        std::string spanName;
        std::thread thread;

        alignas(64) std::atomic<uint64_t> processed{0};

        // Worker-thread state below; the producer only touches it
        // after the endPhase() barrier.
        uint64_t ns[AnalysisPipeline::ProfSample::numAnalyses] = {};
        bool drainOnly = false;     //!< threw; keep draining, skip work
        bool phaseOpen = false;
        uint64_t phaseStartNs = 0;
        uint64_t phaseBatches = 0;
        uint64_t phaseEntries = 0;
    };

    Entry &nextEntry();
    void flush();
    void awaitDrained();
    void rethrowIfFailed();
    void noteFailure(std::exception_ptr error);

    void trackerLoop();
    void consumerLoop(Worker &w);
    void trackBatch(Batch &batch);
    void consumeBatch(Worker &w, const Batch &batch);
    void dispatch(Which which, const Entry &entry, bool counting);
    void closePhaseSpan(Worker &w);

    AnalysisPipeline &pipe_;
    const bool profiling_;
    const bool wantCallRegs_;

    // Producer-side state.
    BatchPtr pending_;
    bool counting_ = false;
    uint32_t profTick_ = 0;
    uint64_t samples_ = 0;      //!< entries marked for timed dispatch
    uint64_t pushed_ = 0;       //!< batches pushed (sentinels included)

    Worker tracker_;
    std::vector<std::unique_ptr<Worker>> consumers_;

    std::mutex failMutex_;
    std::exception_ptr firstError_;
    std::atomic<bool> failed_{false};
};

} // namespace irep::core

#endif // IREP_CORE_SHARD_HH
