#include "minicc/lexer.hh"

#include <array>
#include <cctype>

#include "support/logging.hh"

namespace irep::minicc
{

namespace
{

constexpr std::array<const char *, 15> keywords = {
    "int", "char", "void", "struct", "if", "else", "while", "for",
    "do", "return", "break", "continue", "sizeof", "goto", "switch",
};

bool
isKeywordWord(const std::string &word)
{
    for (const char *k : keywords) {
        if (word == k)
            return true;
    }
    return false;
}

// Multi-character punctuators, longest first.
constexpr std::array<const char *, 21> punct3then2 = {
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
    "->", "++", "--",
};

} // namespace

std::vector<Token>
lex(const std::string &source)
{
    std::vector<Token> out;
    size_t i = 0;
    int line = 1;
    const size_t n = source.size();

    auto err = [&](const std::string &msg) {
        fatal("minicc: line ", line, ": ", msg);
    };

    auto decodeEscape = [&](size_t &pos) -> char {
        // pos is at the char after '\\'.
        char c = source[pos++];
        switch (c) {
          case 'n': return '\n';
          case 't': return '\t';
          case 'r': return '\r';
          case '0': return '\0';
          case '\\': return '\\';
          case '\'': return '\'';
          case '"': return '"';
          default:
            err(std::string("bad escape '\\") + c + "'");
            return '\0';    // unreachable; err() throws
        }
    };

    while (i < n) {
        char c = source[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Comments.
        if (c == '/' && i + 1 < n && source[i + 1] == '/') {
            while (i < n && source[i] != '\n')
                ++i;
            continue;
        }
        if (c == '/' && i + 1 < n && source[i + 1] == '*') {
            i += 2;
            while (i + 1 < n &&
                   !(source[i] == '*' && source[i + 1] == '/')) {
                if (source[i] == '\n')
                    ++line;
                ++i;
            }
            if (i + 1 >= n)
                err("unterminated comment");
            i += 2;
            continue;
        }

        Token tok;
        tok.line = line;

        // Identifiers and keywords.
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            size_t start = i;
            while (i < n &&
                   (std::isalnum(static_cast<unsigned char>(source[i])) ||
                    source[i] == '_')) {
                ++i;
            }
            tok.text = source.substr(start, i - start);
            tok.kind = isKeywordWord(tok.text) ? Tok::Keyword
                                               : Tok::Ident;
            out.push_back(std::move(tok));
            continue;
        }

        // Numeric literals (decimal and 0x hex).
        if (std::isdigit(static_cast<unsigned char>(c))) {
            size_t start = i;
            int base = 10;
            if (c == '0' && i + 1 < n &&
                (source[i + 1] == 'x' || source[i + 1] == 'X')) {
                base = 16;
                i += 2;
            }
            int64_t value = 0;
            bool any = base == 10;
            while (i < n) {
                char d = source[i];
                int digit;
                if (std::isdigit(static_cast<unsigned char>(d)))
                    digit = d - '0';
                else if (base == 16 && d >= 'a' && d <= 'f')
                    digit = d - 'a' + 10;
                else if (base == 16 && d >= 'A' && d <= 'F')
                    digit = d - 'A' + 10;
                else
                    break;
                value = value * base + digit;
                any = true;
                ++i;
            }
            if (!any)
                err("bad numeric literal");
            tok.kind = Tok::IntLit;
            tok.value = value;
            tok.text = source.substr(start, i - start);
            out.push_back(std::move(tok));
            continue;
        }

        // Character literal.
        if (c == '\'') {
            ++i;
            if (i >= n)
                err("unterminated char literal");
            char v;
            if (source[i] == '\\') {
                ++i;
                v = decodeEscape(i);
            } else {
                v = source[i++];
            }
            if (i >= n || source[i] != '\'')
                err("unterminated char literal");
            ++i;
            tok.kind = Tok::CharLit;
            tok.value = static_cast<unsigned char>(v);
            tok.text = std::string(1, v);
            out.push_back(std::move(tok));
            continue;
        }

        // String literal.
        if (c == '"') {
            ++i;
            std::string body;
            while (i < n && source[i] != '"') {
                if (source[i] == '\n')
                    err("newline in string literal");
                if (source[i] == '\\') {
                    ++i;
                    if (i >= n)
                        err("unterminated string literal");
                    body.push_back(decodeEscape(i));
                } else {
                    body.push_back(source[i++]);
                }
            }
            if (i >= n)
                err("unterminated string literal");
            ++i;
            tok.kind = Tok::StrLit;
            tok.text = std::move(body);
            out.push_back(std::move(tok));
            continue;
        }

        // Punctuators.
        bool matched = false;
        for (const char *p : punct3then2) {
            size_t len = std::string_view(p).size();
            if (source.compare(i, len, p) == 0) {
                tok.kind = Tok::Punct;
                tok.text = p;
                i += len;
                matched = true;
                break;
            }
        }
        if (!matched) {
            static const std::string singles = "+-*/%&|^~!<>=()[]{};,.?:";
            if (singles.find(c) == std::string::npos)
                err(std::string("unexpected character '") + c + "'");
            tok.kind = Tok::Punct;
            tok.text = std::string(1, c);
            ++i;
        }
        out.push_back(std::move(tok));
    }

    Token end;
    end.kind = Tok::End;
    end.line = line;
    out.push_back(end);
    return out;
}

} // namespace irep::minicc
