/**
 * @file
 * Recursive-descent parser for MiniC. See README for the language
 * definition: a C subset with int/char/void, pointers, 1-D arrays,
 * structs, the full C operator set, and syscall intrinsics
 * (__read, __write, __sbrk, __exit).
 */

#ifndef IREP_MINICC_PARSER_HH
#define IREP_MINICC_PARSER_HH

#include <memory>
#include <string>

#include "minicc/ast.hh"

namespace irep::minicc
{

/**
 * Parse a MiniC translation unit. The returned Unit is unresolved
 * (no symbols or types on expressions); run analyze() next.
 */
std::unique_ptr<Unit> parse(const std::string &source);

} // namespace irep::minicc

#endif // IREP_MINICC_PARSER_HH
