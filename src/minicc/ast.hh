/**
 * @file
 * Abstract syntax tree for MiniC. The parser builds it unresolved;
 * semantic analysis fills in types, symbols and lvalue-ness in place;
 * code generation walks the annotated tree.
 */

#ifndef IREP_MINICC_AST_HH
#define IREP_MINICC_AST_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "minicc/type.hh"

namespace irep::minicc
{

/** Where a variable lives at run time (assigned during codegen). */
enum class VarHome : uint8_t
{
    Unassigned,
    SReg,       //!< callee-saved register
    Stack,      //!< frame slot, sp-relative
    Global,     //!< data-segment label
};

/** A resolved variable (global, parameter, or local). */
struct VarSym
{
    std::string name;
    const Type *type = nullptr;
    bool isGlobal = false;
    int paramIndex = -1;        //!< >= 0 for parameters
    bool addrTaken = false;     //!< address-of or aggregate type

    VarHome home = VarHome::Unassigned;
    int sreg = -1;              //!< s-register number when home==SReg
    int stackOffset = 0;        //!< sp offset when home==Stack
    std::string label;          //!< data label when home==Global
};

/** A resolved function. Intrinsics map directly to syscalls. */
struct FuncSym
{
    std::string name;
    const Type *retType = nullptr;
    std::vector<const Type *> paramTypes;
    bool defined = false;
    int intrinsic = -1;         //!< Syscall number for __read etc.
};

enum class ExprKind : uint8_t
{
    IntLit,
    StrLit,
    Var,
    Unary,      //!< - ~ ! * (deref) & (addr-of)
    Binary,     //!< arithmetic / comparison / logical / shifts
    Assign,     //!< = and compound assignments
    Cond,       //!< ?:
    Call,
    Index,      //!< a[i]
    Member,     //!< s.m and p->m
    Cast,
    IncDec,     //!< ++/-- prefix and postfix
    SizeofType,
};

struct Expr
{
    ExprKind kind;
    int line = 0;

    // Filled by sema:
    const Type *type = nullptr;
    bool isLValue = false;

    int64_t intValue = 0;       //!< IntLit / CharLit value
    std::string strValue;       //!< StrLit body or Member name
    int strLabel = -1;          //!< string-pool index (sema)
    std::string op;             //!< operator spelling
    bool isPrefix = false;      //!< IncDec
    bool isArrow = false;       //!< Member via ->

    std::unique_ptr<Expr> a;    //!< first operand
    std::unique_ptr<Expr> b;    //!< second operand
    std::unique_ptr<Expr> c;    //!< third operand (Cond)

    std::string callee;         //!< Call target name
    std::vector<std::unique_ptr<Expr>> args;

    VarSym *var = nullptr;              //!< resolved Var
    FuncSym *func = nullptr;            //!< resolved Call
    const Type *namedType = nullptr;    //!< Cast / SizeofType
    const StructMember *memberRef = nullptr;
};

using ExprPtr = std::unique_ptr<Expr>;

enum class StmtKind : uint8_t
{
    Expr,
    If,
    While,
    DoWhile,
    For,
    Return,
    Break,
    Continue,
    Block,
    Decl,
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/** One declarator in a local declaration statement. */
struct LocalDecl
{
    std::string name;
    const Type *type = nullptr;
    ExprPtr init;               //!< optional scalar initializer
    VarSym *sym = nullptr;      //!< resolved by sema
};

struct Stmt
{
    StmtKind kind;
    int line = 0;

    ExprPtr expr;       //!< Expr value / If-While-DoWhile cond / Return
    ExprPtr inc;        //!< For increment
    ExprPtr cond;       //!< For condition
    StmtPtr init;       //!< For initializer (Decl or Expr statement)
    StmtPtr then;       //!< If then-branch
    StmtPtr els;        //!< If else-branch
    StmtPtr body;       //!< loop body
    std::vector<StmtPtr> stmts;     //!< Block
    std::vector<LocalDecl> decls;   //!< Decl
};

/** A global variable definition. */
struct GlobalDecl
{
    int line = 0;
    std::string name;
    const Type *type = nullptr;
    ExprPtr init;                       //!< scalar initializer
    std::vector<ExprPtr> initList;      //!< array/struct initializer
    bool hasInitList = false;
    std::string strInit;                //!< char-array string init
    bool hasStrInit = false;
    VarSym *sym = nullptr;
};

/** A function definition. */
struct FuncDecl
{
    int line = 0;
    std::string name;
    const Type *retType = nullptr;
    std::vector<std::pair<std::string, const Type *>> params;
    StmtPtr body;
    FuncSym *sym = nullptr;

    // Filled by sema for codegen:
    std::vector<VarSym *> paramSyms;
    std::vector<VarSym *> locals;   //!< all block-scope variables
};

/** A parsed translation unit (owns all symbols). */
struct Unit
{
    TypeTable types;
    std::deque<VarSym> varPool;
    std::deque<FuncSym> funcPool;
    std::vector<GlobalDecl> globals;
    std::vector<FuncDecl> funcs;
    std::vector<std::string> stringPool;    //!< string literal bodies

    VarSym *
    newVar()
    {
        varPool.emplace_back();
        return &varPool.back();
    }

    FuncSym *
    newFunc()
    {
        funcPool.emplace_back();
        return &funcPool.back();
    }
};

} // namespace irep::minicc

#endif // IREP_MINICC_AST_HH
