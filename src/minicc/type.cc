#include "minicc/type.hh"

#include "support/logging.hh"

namespace irep::minicc
{

const StructMember *
StructDef::member(const std::string &member_name) const
{
    for (const auto &m : members) {
        if (m.name == member_name)
            return &m;
    }
    return nullptr;
}

int
Type::size() const
{
    switch (kind) {
      case Void:
        fatal("sizeof(void)");
      case Int:
        return 4;
      case Char:
        return 1;
      case Ptr:
        return 4;
      case Array:
        return base->size() * arraySize;
      case Struct:
        return sdef->size;
    }
    panic("bad type kind");
}

int
Type::align() const
{
    switch (kind) {
      case Void:
        return 1;
      case Int:
      case Ptr:
        return 4;
      case Char:
        return 1;
      case Array:
        return base->align();
      case Struct:
        return sdef->align;
    }
    panic("bad type kind");
}

std::string
Type::str() const
{
    switch (kind) {
      case Void:
        return "void";
      case Int:
        return "int";
      case Char:
        return "char";
      case Ptr:
        return base->str() + "*";
      case Array:
        return base->str() + "[" + std::to_string(arraySize) + "]";
      case Struct:
        return "struct " + sdef->name;
    }
    panic("bad type kind");
}

TypeTable::TypeTable()
{
    void_.kind = Type::Void;
    int_.kind = Type::Int;
    char_.kind = Type::Char;
}

const Type *
TypeTable::ptrTo(const Type *base)
{
    for (const Type &t : derived_) {
        if (t.kind == Type::Ptr && t.base == base)
            return &t;
    }
    Type t;
    t.kind = Type::Ptr;
    t.base = base;
    derived_.push_back(t);
    return &derived_.back();
}

const Type *
TypeTable::arrayOf(const Type *base, int count)
{
    for (const Type &t : derived_) {
        if (t.kind == Type::Array && t.base == base &&
            t.arraySize == count) {
            return &t;
        }
    }
    Type t;
    t.kind = Type::Array;
    t.base = base;
    t.arraySize = count;
    derived_.push_back(t);
    return &derived_.back();
}

const Type *
TypeTable::structType(const StructDef *def)
{
    for (const Type &t : derived_) {
        if (t.kind == Type::Struct && t.sdef == def)
            return &t;
    }
    Type t;
    t.kind = Type::Struct;
    t.sdef = def;
    derived_.push_back(t);
    return &derived_.back();
}

StructDef *
TypeTable::makeStruct(const std::string &name)
{
    structs_.emplace_back();
    structs_.back().name = name;
    return &structs_.back();
}

const StructDef *
TypeTable::findStruct(const std::string &name) const
{
    for (const StructDef &s : structs_) {
        if (s.name == name)
            return &s;
    }
    return nullptr;
}

} // namespace irep::minicc
