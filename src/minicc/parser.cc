#include "minicc/parser.hh"

#include <array>

#include "minicc/lexer.hh"
#include "support/logging.hh"

namespace irep::minicc
{

namespace
{

/** Binary operator precedence levels, lowest first. */
struct PrecLevel
{
    std::array<const char *, 4> ops;
};

constexpr std::array<PrecLevel, 10> precTable = {{
    {{"||", nullptr, nullptr, nullptr}},
    {{"&&", nullptr, nullptr, nullptr}},
    {{"|", nullptr, nullptr, nullptr}},
    {{"^", nullptr, nullptr, nullptr}},
    {{"&", nullptr, nullptr, nullptr}},
    {{"==", "!=", nullptr, nullptr}},
    {{"<", ">", "<=", ">="}},
    {{"<<", ">>", nullptr, nullptr}},
    {{"+", "-", nullptr, nullptr}},
    {{"*", "/", "%", nullptr}},
}};

class Parser
{
  public:
    explicit Parser(const std::string &source)
        : unit_(std::make_unique<Unit>()), tokens_(lex(source))
    {}

    std::unique_ptr<Unit> run();

  private:
    // --- token stream -------------------------------------------------
    const Token &peek(int ahead = 0) const
    {
        const size_t i = pos_ + size_t(ahead);
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }

    const Token &advance() { return tokens_[pos_++]; }

    bool
    acceptPunct(const char *spelling)
    {
        if (peek().isPunct(spelling)) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    acceptKeyword(const char *word)
    {
        if (peek().isKeyword(word)) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectPunct(const char *spelling)
    {
        if (!acceptPunct(spelling))
            err(std::string("expected '") + spelling + "', got '" +
                peek().text + "'");
    }

    std::string
    expectIdent()
    {
        if (!peek().is(Tok::Ident))
            err("expected identifier, got '" + peek().text + "'");
        return advance().text;
    }

    [[noreturn]] void
    err(const std::string &msg) const
    {
        fatal("minicc: line ", peek().line, ": parse error: ", msg);
    }

    // --- types ---------------------------------------------------------
    bool startsType(const Token &t) const;
    const Type *typeSpec();
    const Type *declaratorType(const Type *base, std::string &name,
                               bool allow_array);

    // --- declarations ---------------------------------------------------
    void topLevel();
    void structDef();
    void globalTail(const Type *base_spec, const Type *first_type,
                    std::string first_name, int line);
    void funcTail(const Type *ret, std::string name, int line);
    GlobalDecl globalOne(const Type *type, std::string name, int line);

    // --- statements -----------------------------------------------------
    StmtPtr statement();
    StmtPtr block();
    StmtPtr declStatement();

    // --- expressions ----------------------------------------------------
    ExprPtr expression() { return assignment(); }
    ExprPtr assignment();
    ExprPtr conditional();
    ExprPtr binary(int level);
    ExprPtr unary();
    ExprPtr postfix();
    ExprPtr primary();

    ExprPtr
    makeExpr(ExprKind kind)
    {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->line = peek().line;
        return e;
    }

    std::unique_ptr<Unit> unit_;
    std::vector<Token> tokens_;
    size_t pos_ = 0;
};

// -----------------------------------------------------------------------
// Types
// -----------------------------------------------------------------------

bool
Parser::startsType(const Token &t) const
{
    return t.isKeyword("int") || t.isKeyword("char") ||
           t.isKeyword("void") || t.isKeyword("struct");
}

const Type *
Parser::typeSpec()
{
    if (acceptKeyword("int"))
        return unit_->types.intType();
    if (acceptKeyword("char"))
        return unit_->types.charType();
    if (acceptKeyword("void"))
        return unit_->types.voidType();
    if (acceptKeyword("struct")) {
        const std::string name = expectIdent();
        const StructDef *def = unit_->types.findStruct(name);
        if (!def)
            err("unknown struct '" + name + "'");
        return unit_->types.structType(def);
    }
    err("expected type, got '" + peek().text + "'");
}

const Type *
Parser::declaratorType(const Type *base, std::string &name,
                       bool allow_array)
{
    const Type *t = base;
    while (acceptPunct("*"))
        t = unit_->types.ptrTo(t);
    name = expectIdent();
    if (peek().isPunct("[")) {
        if (!allow_array)
            err("array not allowed here");
        expectPunct("[");
        if (!peek().is(Tok::IntLit))
            err("array size must be an integer literal");
        const int count = int(advance().value);
        if (count <= 0)
            err("array size must be positive");
        expectPunct("]");
        t = unit_->types.arrayOf(t, count);
    }
    return t;
}

// -----------------------------------------------------------------------
// Declarations
// -----------------------------------------------------------------------

void
Parser::structDef()
{
    advance();  // 'struct'
    const std::string name = expectIdent();
    if (unit_->types.findStruct(name))
        err("duplicate struct '" + name + "'");
    StructDef *def = unit_->types.makeStruct(name);
    expectPunct("{");

    int offset = 0;
    int align = 4;
    while (!acceptPunct("}")) {
        const Type *spec = typeSpec();
        do {
            std::string member_name;
            const Type *mt =
                declaratorType(spec, member_name, true);
            if (mt->isStruct() && mt->sdef == def)
                err("struct contains itself");
            StructMember m;
            m.name = member_name;
            m.type = mt;
            const int a = mt->align();
            offset = (offset + a - 1) & ~(a - 1);
            m.offset = offset;
            offset += mt->size();
            align = std::max(align, a);
            if (def->member(member_name))
                err("duplicate member '" + member_name + "'");
            def->members.push_back(std::move(m));
        } while (acceptPunct(","));
        expectPunct(";");
    }
    expectPunct(";");
    def->align = align;
    def->size = (offset + align - 1) & ~(align - 1);
    if (def->size == 0)
        def->size = align;
}

GlobalDecl
Parser::globalOne(const Type *type, std::string name, int line)
{
    GlobalDecl g;
    g.line = line;
    g.name = std::move(name);
    g.type = type;
    if (acceptPunct("=")) {
        if (peek().is(Tok::StrLit)) {
            g.hasStrInit = true;
            g.strInit = advance().text;
        } else if (acceptPunct("{")) {
            g.hasInitList = true;
            if (!acceptPunct("}")) {
                do {
                    g.initList.push_back(conditional());
                } while (acceptPunct(","));
                expectPunct("}");
            }
        } else {
            g.init = conditional();
        }
    }
    return g;
}

void
Parser::globalTail(const Type *base_spec, const Type *first_type,
                   std::string first_name, int line)
{
    unit_->globals.push_back(
        globalOne(first_type, std::move(first_name), line));
    while (acceptPunct(",")) {
        std::string name;
        const Type *t = declaratorType(base_spec, name, true);
        unit_->globals.push_back(globalOne(t, std::move(name), line));
    }
    expectPunct(";");
}

void
Parser::funcTail(const Type *ret, std::string name, int line)
{
    FuncDecl f;
    f.line = line;
    f.name = std::move(name);
    f.retType = ret;

    expectPunct("(");
    if (!acceptPunct(")")) {
        if (peek().isKeyword("void") && peek(1).isPunct(")")) {
            advance();
            advance();
        } else {
            do {
                const Type *spec = typeSpec();
                std::string param_name;
                const Type *pt =
                    declaratorType(spec, param_name, false);
                if (!pt->isScalar())
                    err("parameters must be scalar (int, char, "
                        "or pointer)");
                f.params.emplace_back(std::move(param_name), pt);
            } while (acceptPunct(","));
            expectPunct(")");
        }
    }
    if (f.params.size() > 4)
        err("at most 4 parameters are supported (register "
            "arguments only)");

    if (acceptPunct(";")) {
        // Forward declaration: keep the signature only.
        unit_->funcs.push_back(std::move(f));
        return;
    }
    f.body = block();
    unit_->funcs.push_back(std::move(f));
}

void
Parser::topLevel()
{
    if (peek().isKeyword("struct") && peek(1).is(Tok::Ident) &&
        peek(2).isPunct("{")) {
        structDef();
        return;
    }
    const int line = peek().line;
    const Type *spec = typeSpec();
    std::string name;
    const Type *t = declaratorType(spec, name, true);
    if (peek().isPunct("(")) {
        if (t->isArray())
            err("function cannot return an array");
        funcTail(t, std::move(name), line);
    } else {
        if (t->isVoid())
            err("variable cannot have void type");
        globalTail(spec, t, std::move(name), line);
    }
}

// -----------------------------------------------------------------------
// Statements
// -----------------------------------------------------------------------

StmtPtr
Parser::block()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Block;
    s->line = peek().line;
    expectPunct("{");
    while (!acceptPunct("}"))
        s->stmts.push_back(statement());
    return s;
}

StmtPtr
Parser::declStatement()
{
    auto s = std::make_unique<Stmt>();
    s->kind = StmtKind::Decl;
    s->line = peek().line;
    const Type *spec = typeSpec();
    do {
        LocalDecl d;
        d.type = declaratorType(spec, d.name, true);
        if (d.type->isVoid())
            err("variable cannot have void type");
        if (acceptPunct("="))
            d.init = expression();
        s->decls.push_back(std::move(d));
    } while (acceptPunct(","));
    expectPunct(";");
    return s;
}

StmtPtr
Parser::statement()
{
    const int line = peek().line;
    auto make = [&](StmtKind kind) {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        s->line = line;
        return s;
    };

    if (peek().isPunct("{"))
        return block();

    if (startsType(peek()))
        return declStatement();

    if (acceptKeyword("if")) {
        auto s = make(StmtKind::If);
        expectPunct("(");
        s->expr = expression();
        expectPunct(")");
        s->then = statement();
        if (acceptKeyword("else"))
            s->els = statement();
        return s;
    }
    if (acceptKeyword("while")) {
        auto s = make(StmtKind::While);
        expectPunct("(");
        s->expr = expression();
        expectPunct(")");
        s->body = statement();
        return s;
    }
    if (acceptKeyword("do")) {
        auto s = make(StmtKind::DoWhile);
        s->body = statement();
        if (!acceptKeyword("while"))
            err("expected 'while' after do-body");
        expectPunct("(");
        s->expr = expression();
        expectPunct(")");
        expectPunct(";");
        return s;
    }
    if (acceptKeyword("for")) {
        auto s = make(StmtKind::For);
        expectPunct("(");
        if (!peek().isPunct(";")) {
            if (startsType(peek())) {
                s->init = declStatement();  // consumes ';'
            } else {
                auto init = make(StmtKind::Expr);
                init->expr = expression();
                s->init = std::move(init);
                expectPunct(";");
            }
        } else {
            expectPunct(";");
        }
        if (!peek().isPunct(";"))
            s->cond = expression();
        expectPunct(";");
        if (!peek().isPunct(")"))
            s->inc = expression();
        expectPunct(")");
        s->body = statement();
        return s;
    }
    if (acceptKeyword("return")) {
        auto s = make(StmtKind::Return);
        if (!peek().isPunct(";"))
            s->expr = expression();
        expectPunct(";");
        return s;
    }
    if (acceptKeyword("break")) {
        expectPunct(";");
        return make(StmtKind::Break);
    }
    if (acceptKeyword("continue")) {
        expectPunct(";");
        return make(StmtKind::Continue);
    }

    auto s = make(StmtKind::Expr);
    s->expr = expression();
    expectPunct(";");
    return s;
}

// -----------------------------------------------------------------------
// Expressions
// -----------------------------------------------------------------------

ExprPtr
Parser::assignment()
{
    ExprPtr lhs = conditional();
    static const char *assign_ops[] = {
        "=", "+=", "-=", "*=", "/=", "%=",
        "&=", "|=", "^=", "<<=", ">>=",
    };
    for (const char *op : assign_ops) {
        if (peek().isPunct(op)) {
            advance();
            auto e = makeExpr(ExprKind::Assign);
            e->op = op;
            e->a = std::move(lhs);
            e->b = assignment();    // right-associative
            return e;
        }
    }
    return lhs;
}

ExprPtr
Parser::conditional()
{
    ExprPtr cond = binary(0);
    if (!acceptPunct("?"))
        return cond;
    auto e = makeExpr(ExprKind::Cond);
    e->a = std::move(cond);
    e->b = expression();
    expectPunct(":");
    e->c = conditional();
    return e;
}

ExprPtr
Parser::binary(int level)
{
    if (level >= int(precTable.size()))
        return unary();
    ExprPtr lhs = binary(level + 1);
    while (true) {
        const char *matched = nullptr;
        for (const char *op : precTable[size_t(level)].ops) {
            if (op && peek().isPunct(op)) {
                matched = op;
                break;
            }
        }
        if (!matched)
            return lhs;
        advance();
        auto e = makeExpr(ExprKind::Binary);
        e->op = matched;
        e->a = std::move(lhs);
        e->b = binary(level + 1);
        lhs = std::move(e);
    }
}

ExprPtr
Parser::unary()
{
    // Cast: '(' type ')' unary.
    if (peek().isPunct("(") && startsType(peek(1))) {
        advance();
        const Type *spec = typeSpec();
        const Type *t = spec;
        while (acceptPunct("*"))
            t = unit_->types.ptrTo(t);
        expectPunct(")");
        auto e = makeExpr(ExprKind::Cast);
        e->namedType = t;
        e->a = unary();
        return e;
    }

    if (acceptKeyword("sizeof")) {
        expectPunct("(");
        auto e = makeExpr(ExprKind::SizeofType);
        const Type *spec = typeSpec();
        const Type *t = spec;
        while (acceptPunct("*"))
            t = unit_->types.ptrTo(t);
        e->namedType = t;
        expectPunct(")");
        return e;
    }

    static const char *unary_ops[] = {"-", "~", "!", "*", "&"};
    for (const char *op : unary_ops) {
        if (peek().isPunct(op)) {
            advance();
            auto e = makeExpr(ExprKind::Unary);
            e->op = op;
            e->a = unary();
            return e;
        }
    }

    if (peek().isPunct("++") || peek().isPunct("--")) {
        auto e = makeExpr(ExprKind::IncDec);
        e->op = advance().text;
        e->isPrefix = true;
        e->a = unary();
        return e;
    }

    return postfix();
}

ExprPtr
Parser::postfix()
{
    ExprPtr e = primary();
    while (true) {
        if (acceptPunct("[")) {
            auto idx = makeExpr(ExprKind::Index);
            idx->a = std::move(e);
            idx->b = expression();
            expectPunct("]");
            e = std::move(idx);
        } else if (peek().isPunct(".") || peek().isPunct("->")) {
            const bool arrow = peek().isPunct("->");
            advance();
            auto m = makeExpr(ExprKind::Member);
            m->isArrow = arrow;
            m->a = std::move(e);
            m->strValue = expectIdent();
            e = std::move(m);
        } else if (peek().isPunct("++") || peek().isPunct("--")) {
            auto p = makeExpr(ExprKind::IncDec);
            p->op = advance().text;
            p->isPrefix = false;
            p->a = std::move(e);
            e = std::move(p);
        } else {
            return e;
        }
    }
}

ExprPtr
Parser::primary()
{
    const Token &t = peek();
    if (t.is(Tok::IntLit) || t.is(Tok::CharLit)) {
        auto e = makeExpr(ExprKind::IntLit);
        e->intValue = advance().value;
        return e;
    }
    if (t.is(Tok::StrLit)) {
        auto e = makeExpr(ExprKind::StrLit);
        e->strValue = advance().text;
        return e;
    }
    if (t.is(Tok::Ident)) {
        // Function call?
        if (peek(1).isPunct("(")) {
            auto e = makeExpr(ExprKind::Call);
            e->callee = advance().text;
            expectPunct("(");
            if (!acceptPunct(")")) {
                do {
                    e->args.push_back(assignment());
                } while (acceptPunct(","));
                expectPunct(")");
            }
            return e;
        }
        auto e = makeExpr(ExprKind::Var);
        e->strValue = advance().text;
        return e;
    }
    if (acceptPunct("(")) {
        ExprPtr e = expression();
        expectPunct(")");
        return e;
    }
    err("expected expression, got '" + t.text + "'");
}

std::unique_ptr<Unit>
Parser::run()
{
    while (!peek().is(Tok::End))
        topLevel();
    return std::move(unit_);
}

} // namespace

std::unique_ptr<Unit>
parse(const std::string &source)
{
    Parser parser(source);
    return parser.run();
}

} // namespace irep::minicc
