/**
 * @file
 * Lexer for MiniC. Produces a flat token vector consumed by the
 * recursive-descent parser.
 */

#ifndef IREP_MINICC_LEXER_HH
#define IREP_MINICC_LEXER_HH

#include <cstdint>
#include <string>
#include <vector>

namespace irep::minicc
{

/** Token kinds. Punctuators carry their spelling in `text`. */
enum class Tok : uint8_t
{
    End,
    Ident,
    IntLit,
    CharLit,
    StrLit,
    Keyword,
    Punct,
};

struct Token
{
    Tok kind = Tok::End;
    std::string text;       //!< spelling (decoded body for literals)
    int64_t value = 0;      //!< numeric value for Int/Char literals
    int line = 0;

    bool is(Tok k) const { return kind == k; }

    bool
    isPunct(const char *spelling) const
    {
        return kind == Tok::Punct && text == spelling;
    }

    bool
    isKeyword(const char *word) const
    {
        return kind == Tok::Keyword && text == word;
    }
};

/**
 * Tokenize a MiniC translation unit.
 * '//' and C-style comments are skipped. Errors raise FatalError with
 * the line number.
 */
std::vector<Token> lex(const std::string &source);

} // namespace irep::minicc

#endif // IREP_MINICC_LEXER_HH
