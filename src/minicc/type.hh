/**
 * @file
 * The MiniC type system: int, char, void, pointers, one-dimensional
 * arrays, and structs. Types are interned in a TypeTable so they can
 * be compared by pointer.
 */

#ifndef IREP_MINICC_TYPE_HH
#define IREP_MINICC_TYPE_HH

#include <deque>
#include <memory>
#include <string>
#include <vector>

namespace irep::minicc
{

struct Type;

/** One member of a struct definition. */
struct StructMember
{
    std::string name;
    const Type *type = nullptr;
    int offset = 0;
};

/** A named struct definition with laid-out members. */
struct StructDef
{
    std::string name;
    std::vector<StructMember> members;
    int size = 0;
    int align = 4;

    const StructMember *member(const std::string &member_name) const;
};

/** A MiniC type. */
struct Type
{
    enum Kind { Void, Int, Char, Ptr, Array, Struct };

    Kind kind = Void;
    const Type *base = nullptr;     //!< Ptr/Array element type
    int arraySize = 0;              //!< Array element count
    const StructDef *sdef = nullptr;

    bool isVoid() const { return kind == Void; }
    bool isInt() const { return kind == Int; }
    bool isChar() const { return kind == Char; }
    bool isPtr() const { return kind == Ptr; }
    bool isArray() const { return kind == Array; }
    bool isStruct() const { return kind == Struct; }
    bool isArith() const { return kind == Int || kind == Char; }
    bool isScalar() const { return isArith() || isPtr(); }

    /** Size in bytes (fatal for void). */
    int size() const;

    /** Alignment in bytes. */
    int align() const;

    /** Human-readable spelling for diagnostics. */
    std::string str() const;
};

/** Owner and intern table for types and struct definitions. */
class TypeTable
{
  public:
    TypeTable();

    const Type *voidType() const { return &void_; }
    const Type *intType() const { return &int_; }
    const Type *charType() const { return &char_; }

    const Type *ptrTo(const Type *base);
    const Type *arrayOf(const Type *base, int count);
    const Type *structType(const StructDef *def);

    /** Create a new (initially empty) struct definition. */
    StructDef *makeStruct(const std::string &name);

    /** Find a struct definition by name, or nullptr. */
    const StructDef *findStruct(const std::string &name) const;

  private:
    Type void_, int_, char_;
    std::deque<Type> derived_;
    std::deque<StructDef> structs_;
};

} // namespace irep::minicc

#endif // IREP_MINICC_TYPE_HH
