/**
 * @file
 * MIPS code generation for MiniC. Walks the analyzed AST and emits
 * assembly text for src/asm's assembler.
 *
 * Code-generation model (chosen to mirror the code attributes the
 * paper's analyses key off):
 *   - expression evaluation on a register stack $t0..$t7 with spill
 *     slots in the frame beyond depth 8 ($t8/$t9 are scratch)
 *   - scalar locals and parameters whose address is never taken are
 *     register-allocated to callee-saved $s0..$s7, which the prologue
 *     saves and the epilogue restores (the paper's prologue/epilogue
 *     category)
 *   - global variables are addressed by materializing the address with
 *     lui/ori (the paper's "global address calculation" category)
 *   - arguments are passed in $a0..$a3 per the o32 convention and
 *     copied to their homes on entry
 */

#ifndef IREP_MINICC_CODEGEN_HH
#define IREP_MINICC_CODEGEN_HH

#include <string>

#include "minicc/ast.hh"

namespace irep::minicc
{

/**
 * Generate assembly for an analyzed unit.
 * The output contains a `_start` stub that calls main() and passes its
 * return value to the exit syscall, plus `.ent/.end` function metadata
 * with argument counts for the analyses.
 */
std::string generate(Unit &unit);

} // namespace irep::minicc

#endif // IREP_MINICC_CODEGEN_HH
