#include "minicc/codegen.hh"

#include "minicc/sema.hh"

#include <algorithm>
#include <sstream>

#include "support/bits.hh"
#include "support/logging.hh"

namespace irep::minicc
{

namespace
{

/** Frame layout constants (bytes from $sp). */
constexpr int callSaveBase = 0;     //!< 8 words: temps live across calls
constexpr int spillBase = 32;      //!< 16 words: expression-stack spill
constexpr int localsBase = 96;     //!< memory locals start here
constexpr int maxDepth = 24;       //!< 8 registers + 16 spill slots
constexpr int numTempRegs = 8;     //!< $t0..$t7
constexpr int numSRegs = 8;        //!< $s0..$s7

/** Escape a string body for emission inside a quoted .asciiz. */
std::string
escapeForAsm(const std::string &body)
{
    std::string out;
    for (char c : body) {
        switch (c) {
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          case '\0': out += "\\0"; break;
          case '\\': out += "\\\\"; break;
          case '"': out += "\\\""; break;
          default: out.push_back(c); break;
        }
    }
    return out;
}

class CodeGen
{
  public:
    explicit CodeGen(Unit &unit) : unit_(unit) {}

    std::string run();

  private:
    // --- emission helpers ------------------------------------------------
    void
    emit(const std::string &text)
    {
        out_ << "    " << text << "\n";
    }

    void
    label(const std::string &name)
    {
        out_ << name << ":\n";
    }

    std::string
    newLabel()
    {
        return "L" + std::to_string(labelCounter_++);
    }

    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        fatal("minicc: line ", line, ": codegen: ", msg);
    }

    // --- temp stack --------------------------------------------------------
    static std::string
    tname(int depth)
    {
        return "$t" + std::to_string(depth);
    }

    static int
    spillOffset(int depth)
    {
        return spillBase + (depth - numTempRegs) * 4;
    }

    void
    checkDepth(int depth, int line)
    {
        if (depth >= maxDepth)
            err(line, "expression too deep");
    }

    /** Get the value at @p depth into a register; returns its name. */
    std::string
    rdTemp(int depth, const char *scratch)
    {
        if (depth < numTempRegs)
            return tname(depth);
        emit("lw " + std::string(scratch) + ", " +
             std::to_string(spillOffset(depth)) + "($sp)");
        return scratch;
    }

    /** Register codegen should target when producing depth @p depth. */
    std::string
    defReg(int depth)
    {
        return depth < numTempRegs ? tname(depth) : "$t8";
    }

    /** Commit defReg(depth) to the stack slot when spilled. */
    void
    wrTemp(int depth)
    {
        if (depth >= numTempRegs) {
            emit("sw $t8, " + std::to_string(spillOffset(depth)) +
                 "($sp)");
        }
    }

    /** Move an arbitrary register into stack position @p depth. */
    void
    moveToTemp(int depth, const std::string &src)
    {
        if (depth < numTempRegs) {
            if (src != tname(depth))
                emit("move " + tname(depth) + ", " + src);
        } else {
            emit("sw " + src + ", " +
                 std::to_string(spillOffset(depth)) + "($sp)");
        }
    }

    // --- typed memory access -------------------------------------------
    static const char *
    loadOpFor(const Type *t)
    {
        return t->isChar() ? "lbu" : "lw";
    }

    static const char *
    storeOpFor(const Type *t)
    {
        return t->isChar() ? "sb" : "sw";
    }

    // --- expression codegen -----------------------------------------------
    void genExpr(const Expr &e, int depth);
    void genAddr(const Expr &e, int depth);
    void genCall(const Expr &e, int depth);
    void genBinary(const Expr &e, int depth);
    void genAssign(const Expr &e, int depth);
    void genIncDec(const Expr &e, int depth);
    void genScaleBy(int depth, int elem_size);
    void genLoadFrom(const std::string &addr_reg, const Type *t,
                     int depth);
    void genCompare(const std::string &op, bool is_unsigned, int depth);

    // --- statements ----------------------------------------------------
    void genStmt(const Stmt &s);

    // --- functions and data -----------------------------------------------
    void assignHomes(FuncDecl &f);
    void genFunction(FuncDecl &f);
    void genGlobals();
    void genStart();
    bool hasCalls(const Stmt &s) const;
    bool exprHasCalls(const Expr &e) const;

    Unit &unit_;
    std::ostringstream out_;
    int labelCounter_ = 0;

    // Per-function state.
    FuncDecl *func_ = nullptr;
    std::string epilogueLabel_;
    int frameSize_ = 0;
    int saveBase_ = 0;
    std::vector<int> usedSRegs_;
    bool funcHasCalls_ = false;
    std::vector<std::pair<std::string, std::string>> loopStack_;
};

// -----------------------------------------------------------------------
// Expressions
// -----------------------------------------------------------------------

void
CodeGen::genScaleBy(int depth, int elem_size)
{
    if (elem_size == 1)
        return;
    const std::string r = rdTemp(depth, "$t8");
    const std::string d = defReg(depth);
    if ((elem_size & (elem_size - 1)) == 0) {
        int shift = 0;
        while ((1 << shift) != elem_size)
            ++shift;
        emit("sll " + d + ", " + r + ", " + std::to_string(shift));
    } else {
        emit("li $t9, " + std::to_string(elem_size));
        emit("mul " + d + ", " + r + ", $t9");
    }
    wrTemp(depth);
}

void
CodeGen::genLoadFrom(const std::string &addr_reg, const Type *t,
                     int depth)
{
    const std::string d = defReg(depth);
    emit(std::string(loadOpFor(t)) + " " + d + ", 0(" + addr_reg + ")");
    wrTemp(depth);
}

void
CodeGen::genAddr(const Expr &e, int depth)
{
    checkDepth(depth, e.line);
    switch (e.kind) {
      case ExprKind::Var: {
        const VarSym *v = e.var;
        if (v->home == VarHome::Stack) {
            const std::string d = defReg(depth);
            emit("addiu " + d + ", $sp, " +
                 std::to_string(v->stackOffset));
            wrTemp(depth);
        } else if (v->home == VarHome::Global) {
            const std::string d = defReg(depth);
            emit("la " + d + ", " + v->label);
            wrTemp(depth);
        } else {
            err(e.line, "address of register variable '" + v->name +
                            "'");
        }
        break;
      }
      case ExprKind::Unary:
        panicIf(e.op != "*", "genAddr on non-deref unary");
        genExpr(*e.a, depth);
        break;
      case ExprKind::Index: {
        genExpr(*e.a, depth);
        const Type *at = e.a->type;
        const Type *elem = at->base;

        // Literal subscripts fold into one addiu (or nothing).
        if (e.b->kind == ExprKind::IntLit ||
            e.b->kind == ExprKind::SizeofType) {
            const int64_t offset = e.b->intValue * elem->size();
            if (fitsSigned(offset, 16)) {
                if (offset != 0) {
                    const std::string ra = rdTemp(depth, "$t8");
                    const std::string d = defReg(depth);
                    emit("addiu " + d + ", " + ra + ", " +
                         std::to_string(offset));
                    wrTemp(depth);
                }
                break;
            }
        }

        genExpr(*e.b, depth + 1);
        genScaleBy(depth + 1, elem->size());
        const std::string ra = rdTemp(depth, "$t8");
        const std::string rb = rdTemp(depth + 1, "$t9");
        const std::string d = defReg(depth);
        emit("addu " + d + ", " + ra + ", " + rb);
        wrTemp(depth);
        break;
      }
      case ExprKind::Member: {
        if (e.isArrow)
            genExpr(*e.a, depth);
        else
            genAddr(*e.a, depth);
        if (e.memberRef->offset != 0) {
            const std::string r = rdTemp(depth, "$t8");
            const std::string d = defReg(depth);
            emit("addiu " + d + ", " + r + ", " +
                 std::to_string(e.memberRef->offset));
            wrTemp(depth);
        }
        break;
      }
      default:
        err(e.line, "expression is not addressable");
    }
}

void
CodeGen::genCompare(const std::string &op, bool is_unsigned, int depth)
{
    const std::string ra = rdTemp(depth, "$t8");
    const std::string rb = rdTemp(depth + 1, "$t9");
    const std::string d = defReg(depth);
    const char *suffix = is_unsigned ? "u" : "";
    if (op == "<")
        emit(std::string("slt") + suffix + " " + d + ", " + ra + ", " +
             rb);
    else if (op == ">")
        emit(std::string("sgt") + suffix + " " + d + ", " + ra + ", " +
             rb);
    else if (op == "<=")
        emit(std::string("sle") + suffix + " " + d + ", " + ra + ", " +
             rb);
    else if (op == ">=")
        emit(std::string("sge") + suffix + " " + d + ", " + ra + ", " +
             rb);
    else if (op == "==")
        emit("seq " + d + ", " + ra + ", " + rb);
    else
        emit("sne " + d + ", " + ra + ", " + rb);
    wrTemp(depth);
}

void
CodeGen::genBinary(const Expr &e, int depth)
{
    const std::string &op = e.op;

    // Short-circuit logical operators.
    if (op == "&&" || op == "||") {
        const std::string l_short = newLabel();
        const std::string l_end = newLabel();
        genExpr(*e.a, depth);
        {
            const std::string ra = rdTemp(depth, "$t8");
            emit((op == "&&" ? "beqz " : "bnez ") + ra + ", " + l_short);
        }
        genExpr(*e.b, depth);
        {
            const std::string rb = rdTemp(depth, "$t8");
            emit((op == "&&" ? "beqz " : "bnez ") + rb + ", " + l_short);
        }
        const std::string d1 = defReg(depth);
        emit("li " + d1 + ", " + (op == "&&" ? "1" : "0"));
        wrTemp(depth);
        emit("b " + l_end);
        label(l_short);
        const std::string d2 = defReg(depth);
        emit("li " + d2 + ", " + (op == "&&" ? "0" : "1"));
        wrTemp(depth);
        label(l_end);
        return;
    }

    genExpr(*e.a, depth);

    const Type *at = e.a->type->isArray()
        ? unit_.types.ptrTo(e.a->type->base) : e.a->type;
    const Type *bt = e.b->type->isArray()
        ? unit_.types.ptrTo(e.b->type->base) : e.b->type;

    // Immediate-operand selection: a literal right operand folds into
    // the I-format instruction (like any optimizing MIPS compiler),
    // including pre-scaled pointer offsets.
    if (e.b->kind == ExprKind::IntLit ||
        e.b->kind == ExprKind::SizeofType) {
        int64_t imm = e.b->intValue;
        const bool ptr_scaled = at->isPtr() && bt->isArith();
        if (ptr_scaled && (op == "+" || op == "-"))
            imm *= at->base->size();
        const std::string ra = rdTemp(depth, "$t8");
        const std::string d = defReg(depth);
        bool emitted = true;
        if (op == "+" && fitsSigned(imm, 16)) {
            emit("addiu " + d + ", " + ra + ", " +
                 std::to_string(imm));
        } else if (op == "-" && fitsSigned(-imm, 16) &&
                   !(at->isPtr() && bt->isPtr())) {
            emit("addiu " + d + ", " + ra + ", " +
                 std::to_string(-imm));
        } else if (op == "&" && fitsUnsigned(imm, 16)) {
            emit("andi " + d + ", " + ra + ", " +
                 std::to_string(imm));
        } else if (op == "|" && fitsUnsigned(imm, 16)) {
            emit("ori " + d + ", " + ra + ", " + std::to_string(imm));
        } else if (op == "^" && fitsUnsigned(imm, 16)) {
            emit("xori " + d + ", " + ra + ", " +
                 std::to_string(imm));
        } else if (op == "<<") {
            emit("sll " + d + ", " + ra + ", " +
                 std::to_string(imm & 31));
        } else if (op == ">>") {
            emit("sra " + d + ", " + ra + ", " +
                 std::to_string(imm & 31));
        } else if (op == "<" && !at->isPtr() && !bt->isPtr() &&
                   fitsSigned(imm, 16)) {
            emit("slti " + d + ", " + ra + ", " +
                 std::to_string(imm));
        } else {
            emitted = false;
        }
        if (emitted) {
            wrTemp(depth);
            return;
        }
    }

    genExpr(*e.b, depth + 1);

    // Pointer arithmetic scaling.
    if (op == "+" || op == "-") {
        if (at->isPtr() && bt->isArith()) {
            genScaleBy(depth + 1, at->base->size());
        } else if (at->isArith() && bt->isPtr()) {
            genScaleBy(depth, bt->base->size());
        }
    }

    if (op == "==" || op == "!=" || op == "<" || op == ">" ||
        op == "<=" || op == ">=") {
        genCompare(op, at->isPtr() || bt->isPtr(), depth);
        return;
    }

    const std::string ra = rdTemp(depth, "$t8");
    const std::string rb = rdTemp(depth + 1, "$t9");
    const std::string d = defReg(depth);

    if (op == "+") {
        emit("addu " + d + ", " + ra + ", " + rb);
    } else if (op == "-") {
        emit("subu " + d + ", " + ra + ", " + rb);
        if (at->isPtr() && bt->isPtr()) {
            const int size = at->base->size();
            if (size > 1) {
                if ((size & (size - 1)) == 0) {
                    int shift = 0;
                    while ((1 << shift) != size)
                        ++shift;
                    emit("sra " + d + ", " + d + ", " +
                         std::to_string(shift));
                } else {
                    emit("li $t9, " + std::to_string(size));
                    emit("div " + d + ", " + d + ", $t9");
                }
            }
        }
    } else if (op == "*") {
        emit("mul " + d + ", " + ra + ", " + rb);
    } else if (op == "/") {
        emit("div " + d + ", " + ra + ", " + rb);
    } else if (op == "%") {
        emit("rem " + d + ", " + ra + ", " + rb);
    } else if (op == "&") {
        emit("and " + d + ", " + ra + ", " + rb);
    } else if (op == "|") {
        emit("or " + d + ", " + ra + ", " + rb);
    } else if (op == "^") {
        emit("xor " + d + ", " + ra + ", " + rb);
    } else if (op == "<<") {
        emit("sllv " + d + ", " + ra + ", " + rb);
    } else if (op == ">>") {
        emit("srav " + d + ", " + ra + ", " + rb);
    } else {
        err(e.line, "unhandled binary operator '" + op + "'");
    }
    wrTemp(depth);
}

void
CodeGen::genCall(const Expr &e, int depth)
{
    const FuncSym *f = e.func;
    const int nargs = int(e.args.size());

    // Evaluate arguments left to right onto the temp stack.
    for (int i = 0; i < nargs; ++i)
        genExpr(*e.args[i], depth + i);
    checkDepth(depth + nargs, e.line);

    if (f->intrinsic >= 0) {
        // Syscall: args in $a0/$a1, number in $v0, result in $v0.
        for (int i = 0; i < nargs; ++i) {
            const std::string r = rdTemp(depth + i, "$t8");
            emit("move $a" + std::to_string(i) + ", " + r);
        }
        emit("li $v0, " + std::to_string(f->intrinsic));
        emit("syscall");
        moveToTemp(depth, "$v0");
        return;
    }

    // Save live temps below `depth` across the call.
    const int live = std::min(depth, numTempRegs);
    for (int i = 0; i < live; ++i) {
        emit("sw " + tname(i) + ", " +
             std::to_string(callSaveBase + i * 4) + "($sp)");
    }
    // Marshal arguments.
    for (int i = 0; i < nargs; ++i) {
        if (depth + i < numTempRegs) {
            emit("move $a" + std::to_string(i) + ", " +
                 tname(depth + i));
        } else {
            emit("lw $a" + std::to_string(i) + ", " +
                 std::to_string(spillOffset(depth + i)) + "($sp)");
        }
    }
    emit("jal " + f->name);
    for (int i = 0; i < live; ++i) {
        emit("lw " + tname(i) + ", " +
             std::to_string(callSaveBase + i * 4) + "($sp)");
    }
    moveToTemp(depth, "$v0");
}

void
CodeGen::genAssign(const Expr &e, int depth)
{
    const Expr &lhs = *e.a;
    const bool simple = e.op == "=";
    const bool reg_var = lhs.kind == ExprKind::Var &&
                         lhs.var->home == VarHome::SReg;

    if (simple) {
        genExpr(*e.b, depth);
        if (lhs.type->isChar()) {
            // Narrow before the store so the value this expression
            // yields is the converted one, exactly as the stored byte
            // will read back.
            const std::string r0 = rdTemp(depth, "$t8");
            const std::string d = defReg(depth);
            emit("andi " + d + ", " + r0 + ", 0xff");
            wrTemp(depth);
        }
        if (reg_var) {
            const std::string r = rdTemp(depth, "$t8");
            emit("move $s" + std::to_string(lhs.var->sreg) + ", " + r);
        } else {
            genAddr(lhs, depth + 1);
            const std::string rv = rdTemp(depth, "$t8");
            const std::string ra = rdTemp(depth + 1, "$t9");
            emit(std::string(storeOpFor(lhs.type)) + " " + rv + ", 0(" +
                 ra + ")");
        }
        return;
    }

    // Compound assignment: compute lhs OP rhs, store, yield the value.
    const std::string base_op = e.op.substr(0, e.op.size() - 1);
    const int scale = lhs.type->isPtr() &&
                       (base_op == "+" || base_op == "-")
        ? lhs.type->base->size() : 1;

    auto apply = [&](const std::string &d, const std::string &ra,
                     const std::string &rb) {
        if (base_op == "+")
            emit("addu " + d + ", " + ra + ", " + rb);
        else if (base_op == "-")
            emit("subu " + d + ", " + ra + ", " + rb);
        else if (base_op == "*")
            emit("mul " + d + ", " + ra + ", " + rb);
        else if (base_op == "/")
            emit("div " + d + ", " + ra + ", " + rb);
        else if (base_op == "%")
            emit("rem " + d + ", " + ra + ", " + rb);
        else if (base_op == "&")
            emit("and " + d + ", " + ra + ", " + rb);
        else if (base_op == "|")
            emit("or " + d + ", " + ra + ", " + rb);
        else if (base_op == "^")
            emit("xor " + d + ", " + ra + ", " + rb);
        else if (base_op == "<<")
            emit("sllv " + d + ", " + ra + ", " + rb);
        else if (base_op == ">>")
            emit("srav " + d + ", " + ra + ", " + rb);
        else
            err(e.line, "unhandled compound operator '" + e.op + "'");
    };

    if (reg_var) {
        genExpr(*e.b, depth);
        if (scale > 1)
            genScaleBy(depth, scale);
        const std::string rb = rdTemp(depth, "$t8");
        const std::string s = "$s" + std::to_string(lhs.var->sreg);
        apply(s, s, rb);
        if (lhs.type->isChar())
            emit("andi " + s + ", " + s + ", 0xff");
        moveToTemp(depth, s);
        return;
    }

    checkDepth(depth + 2, e.line);
    genAddr(lhs, depth);
    {
        const std::string ra = rdTemp(depth, "$t8");
        genLoadFrom(ra, lhs.type, depth + 1);
    }
    genExpr(*e.b, depth + 2);
    if (scale > 1)
        genScaleBy(depth + 2, scale);
    {
        const std::string rv = rdTemp(depth + 1, "$t8");
        const std::string rb = rdTemp(depth + 2, "$t9");
        const std::string d = defReg(depth + 1);
        apply(d, rv, rb);
        if (lhs.type->isChar())
            emit("andi " + d + ", " + d + ", 0xff");
        wrTemp(depth + 1);
    }
    {
        const std::string rv = rdTemp(depth + 1, "$t8");
        const std::string ra = rdTemp(depth, "$t9");
        emit(std::string(storeOpFor(lhs.type)) + " " + rv + ", 0(" +
             ra + ")");
        moveToTemp(depth, rv);
    }
}

void
CodeGen::genIncDec(const Expr &e, int depth)
{
    const Expr &lhs = *e.a;
    const int delta = (e.op == "++" ? 1 : -1) *
                      (lhs.type->isPtr() ? lhs.type->base->size() : 1);

    if (lhs.kind == ExprKind::Var && lhs.var->home == VarHome::SReg) {
        const std::string s = "$s" + std::to_string(lhs.var->sreg);
        if (!e.isPrefix)
            moveToTemp(depth, s);
        emit("addiu " + s + ", " + s + ", " + std::to_string(delta));
        if (lhs.type->isChar())
            emit("andi " + s + ", " + s + ", 0xff");
        if (e.isPrefix)
            moveToTemp(depth, s);
        return;
    }

    checkDepth(depth + 2, e.line);
    genAddr(lhs, depth);
    {
        const std::string ra = rdTemp(depth, "$t8");
        genLoadFrom(ra, lhs.type, depth + 1);
    }
    {
        const std::string rv = rdTemp(depth + 1, "$t8");
        const std::string d = defReg(depth + 2);
        emit("addiu " + d + ", " + rv + ", " + std::to_string(delta));
        if (lhs.type->isChar())
            emit("andi " + d + ", " + d + ", 0xff");
        wrTemp(depth + 2);
    }
    {
        const std::string rn = rdTemp(depth + 2, "$t8");
        const std::string ra = rdTemp(depth, "$t9");
        emit(std::string(storeOpFor(lhs.type)) + " " + rn + ", 0(" +
             ra + ")");
    }
    const std::string result =
        rdTemp(e.isPrefix ? depth + 2 : depth + 1, "$t8");
    moveToTemp(depth, result);
}

void
CodeGen::genExpr(const Expr &e, int depth)
{
    checkDepth(depth, e.line);
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::SizeofType: {
        const std::string d = defReg(depth);
        emit("li " + d + ", " + std::to_string(
            e.kind == ExprKind::IntLit ? e.intValue : e.intValue));
        wrTemp(depth);
        break;
      }
      case ExprKind::StrLit: {
        const std::string d = defReg(depth);
        emit("la " + d + ", Lstr" + std::to_string(e.strLabel));
        wrTemp(depth);
        break;
      }
      case ExprKind::Var: {
        const VarSym *v = e.var;
        if (v->home == VarHome::SReg) {
            moveToTemp(depth, "$s" + std::to_string(v->sreg));
        } else if (!v->type->isScalar()) {
            // Arrays and structs evaluate to their address.
            genAddr(e, depth);
        } else if (v->home == VarHome::Stack) {
            const std::string d = defReg(depth);
            emit(std::string(loadOpFor(v->type)) + " " + d + ", " +
                 std::to_string(v->stackOffset) + "($sp)");
            wrTemp(depth);
        } else {    // Global scalar.
            genAddr(e, depth);
            const std::string ra = rdTemp(depth, "$t8");
            genLoadFrom(ra, v->type, depth);
        }
        break;
      }
      case ExprKind::Unary: {
        if (e.op == "&") {
            genAddr(*e.a, depth);
            break;
        }
        if (e.op == "*") {
            genExpr(*e.a, depth);
            if (e.type->isScalar()) {
                const std::string ra = rdTemp(depth, "$t8");
                genLoadFrom(ra, e.type, depth);
            }
            break;
        }
        genExpr(*e.a, depth);
        const std::string r = rdTemp(depth, "$t8");
        const std::string d = defReg(depth);
        if (e.op == "-")
            emit("neg " + d + ", " + r);
        else if (e.op == "~")
            emit("not " + d + ", " + r);
        else    // "!"
            emit("sltiu " + d + ", " + r + ", 1");
        wrTemp(depth);
        break;
      }
      case ExprKind::Binary:
        genBinary(e, depth);
        break;
      case ExprKind::Assign:
        genAssign(e, depth);
        break;
      case ExprKind::Cond: {
        const std::string l_else = newLabel();
        const std::string l_end = newLabel();
        genExpr(*e.a, depth);
        {
            const std::string r = rdTemp(depth, "$t8");
            emit("beqz " + r + ", " + l_else);
        }
        genExpr(*e.b, depth);
        emit("b " + l_end);
        label(l_else);
        genExpr(*e.c, depth);
        label(l_end);
        break;
      }
      case ExprKind::Call:
        genCall(e, depth);
        break;
      case ExprKind::Index: {
        genAddr(e, depth);
        if (e.type->isScalar()) {
            const std::string ra = rdTemp(depth, "$t8");
            genLoadFrom(ra, e.type, depth);
        }
        break;
      }
      case ExprKind::Member: {
        genAddr(e, depth);
        if (e.type->isScalar()) {
            const std::string ra = rdTemp(depth, "$t8");
            genLoadFrom(ra, e.type, depth);
        }
        break;
      }
      case ExprKind::Cast: {
        genExpr(*e.a, depth);
        if (e.type->isChar() && !e.a->type->isChar()) {
            const std::string r = rdTemp(depth, "$t8");
            const std::string d = defReg(depth);
            emit("andi " + d + ", " + r + ", 0xff");
            wrTemp(depth);
        }
        break;
      }
      case ExprKind::IncDec:
        genIncDec(e, depth);
        break;
    }
}

// -----------------------------------------------------------------------
// Statements
// -----------------------------------------------------------------------

void
CodeGen::genStmt(const Stmt &s)
{
    switch (s.kind) {
      case StmtKind::Expr:
        genExpr(*s.expr, 0);
        break;

      case StmtKind::If: {
        const std::string l_else = newLabel();
        genExpr(*s.expr, 0);
        emit("beqz $t0, " + l_else);
        genStmt(*s.then);
        if (s.els) {
            const std::string l_end = newLabel();
            emit("b " + l_end);
            label(l_else);
            genStmt(*s.els);
            label(l_end);
        } else {
            label(l_else);
        }
        break;
      }

      case StmtKind::While: {
        const std::string l_cond = newLabel();
        const std::string l_end = newLabel();
        label(l_cond);
        genExpr(*s.expr, 0);
        emit("beqz $t0, " + l_end);
        loopStack_.emplace_back(l_end, l_cond);
        genStmt(*s.body);
        loopStack_.pop_back();
        emit("b " + l_cond);
        label(l_end);
        break;
      }

      case StmtKind::DoWhile: {
        const std::string l_top = newLabel();
        const std::string l_cont = newLabel();
        const std::string l_end = newLabel();
        label(l_top);
        loopStack_.emplace_back(l_end, l_cont);
        genStmt(*s.body);
        loopStack_.pop_back();
        label(l_cont);
        genExpr(*s.expr, 0);
        emit("bnez $t0, " + l_top);
        label(l_end);
        break;
      }

      case StmtKind::For: {
        const std::string l_cond = newLabel();
        const std::string l_cont = newLabel();
        const std::string l_end = newLabel();
        if (s.init)
            genStmt(*s.init);
        label(l_cond);
        if (s.cond) {
            genExpr(*s.cond, 0);
            emit("beqz $t0, " + l_end);
        }
        loopStack_.emplace_back(l_end, l_cont);
        genStmt(*s.body);
        loopStack_.pop_back();
        label(l_cont);
        if (s.inc)
            genExpr(*s.inc, 0);
        emit("b " + l_cond);
        label(l_end);
        break;
      }

      case StmtKind::Return:
        if (s.expr) {
            genExpr(*s.expr, 0);
            if (func_->retType->isChar())
                emit("andi $v0, $t0, 0xff");
            else
                emit("move $v0, $t0");
        }
        emit("b " + epilogueLabel_);
        break;

      case StmtKind::Break:
        panicIf(loopStack_.empty(), "break outside loop in codegen");
        emit("b " + loopStack_.back().first);
        break;

      case StmtKind::Continue:
        panicIf(loopStack_.empty(), "continue outside loop in codegen");
        emit("b " + loopStack_.back().second);
        break;

      case StmtKind::Block:
        for (const StmtPtr &child : s.stmts)
            genStmt(*child);
        break;

      case StmtKind::Decl:
        for (const LocalDecl &d : s.decls) {
            if (!d.init)
                continue;
            genExpr(*d.init, 0);
            const VarSym *v = d.sym;
            if (v->home == VarHome::SReg) {
                emit("move $s" + std::to_string(v->sreg) + ", $t0");
                if (v->type->isChar()) {
                    emit("andi $s" + std::to_string(v->sreg) + ", $s" +
                         std::to_string(v->sreg) + ", 0xff");
                }
            } else {
                emit(std::string(storeOpFor(v->type)) + " $t0, " +
                     std::to_string(v->stackOffset) + "($sp)");
            }
        }
        break;
    }
}

// -----------------------------------------------------------------------
// Functions
// -----------------------------------------------------------------------

bool
CodeGen::exprHasCalls(const Expr &e) const
{
    if (e.kind == ExprKind::Call && e.func->intrinsic < 0)
        return true;
    if (e.a && exprHasCalls(*e.a))
        return true;
    if (e.b && exprHasCalls(*e.b))
        return true;
    if (e.c && exprHasCalls(*e.c))
        return true;
    for (const ExprPtr &arg : e.args) {
        if (exprHasCalls(*arg))
            return true;
    }
    return false;
}

bool
CodeGen::hasCalls(const Stmt &s) const
{
    if (s.expr && exprHasCalls(*s.expr))
        return true;
    if (s.cond && exprHasCalls(*s.cond))
        return true;
    if (s.inc && exprHasCalls(*s.inc))
        return true;
    if (s.init && hasCalls(*s.init))
        return true;
    if (s.then && hasCalls(*s.then))
        return true;
    if (s.els && hasCalls(*s.els))
        return true;
    if (s.body && hasCalls(*s.body))
        return true;
    for (const StmtPtr &child : s.stmts) {
        if (hasCalls(*child))
            return true;
    }
    for (const LocalDecl &d : s.decls) {
        if (d.init && exprHasCalls(*d.init))
            return true;
    }
    return false;
}

void
CodeGen::assignHomes(FuncDecl &f)
{
    usedSRegs_.clear();
    int next_sreg = 0;
    int stack_top = localsBase;

    auto place = [&](VarSym *v) {
        if (v->type->isScalar() && !v->addrTaken &&
            next_sreg < numSRegs) {
            v->home = VarHome::SReg;
            v->sreg = next_sreg++;
            usedSRegs_.push_back(v->sreg);
        } else {
            const int align = std::max(v->type->align(), 4);
            stack_top = (stack_top + align - 1) & ~(align - 1);
            v->home = VarHome::Stack;
            v->stackOffset = stack_top;
            stack_top += std::max(v->type->size(), 4);
        }
    };

    for (VarSym *p : f.paramSyms)
        place(p);
    for (VarSym *l : f.locals)
        place(l);

    // Saved registers and $ra above the locals.
    int offset = (stack_top + 3) & ~3;
    for (int sreg : usedSRegs_) {
        (void)sreg;
        offset += 4;
    }
    if (funcHasCalls_)
        offset += 4;
    frameSize_ = (offset + 7) & ~7;

    // Fix the save-slot offsets now that the frame size is known:
    // s-regs sit directly above locals, $ra at the very top.
    saveBase_ = (stack_top + 3) & ~3;
}

void
CodeGen::genFunction(FuncDecl &f)
{
    func_ = &f;
    epilogueLabel_ = newLabel();
    funcHasCalls_ = hasCalls(*f.body);
    assignHomes(f);

    out_ << "\n.ent " << f.name << ", "
         << f.params.size() << "\n";
    label(f.name);

    emit("addiu $sp, $sp, -" + std::to_string(frameSize_));
    int save_off = saveBase_;
    for (int sreg : usedSRegs_) {
        emit("sw $s" + std::to_string(sreg) + ", " +
             std::to_string(save_off) + "($sp)");
        save_off += 4;
    }
    if (funcHasCalls_) {
        emit("sw $ra, " + std::to_string(save_off) + "($sp)");
    }

    // Copy arguments to their homes.
    for (size_t i = 0; i < f.paramSyms.size(); ++i) {
        const VarSym *p = f.paramSyms[i];
        const std::string areg = "$a" + std::to_string(i);
        if (p->home == VarHome::SReg) {
            if (p->type->isChar()) {
                // Callers pass the raw word; a stack-homed char param
                // narrows via sb/lbu, so narrow the register home the
                // same way.
                emit("andi $s" + std::to_string(p->sreg) + ", " + areg +
                     ", 0xff");
            } else {
                emit("move $s" + std::to_string(p->sreg) + ", " + areg);
            }
        } else {
            emit(std::string(storeOpFor(p->type)) + " " + areg + ", " +
                 std::to_string(p->stackOffset) + "($sp)");
        }
    }

    genStmt(*f.body);

    label(epilogueLabel_);
    save_off = saveBase_;
    for (int sreg : usedSRegs_) {
        emit("lw $s" + std::to_string(sreg) + ", " +
             std::to_string(save_off) + "($sp)");
        save_off += 4;
    }
    if (funcHasCalls_)
        emit("lw $ra, " + std::to_string(save_off) + "($sp)");
    emit("addiu $sp, $sp, " + std::to_string(frameSize_));
    emit("jr $ra");
    out_ << ".end " << f.name << "\n";
    func_ = nullptr;
}

// -----------------------------------------------------------------------
// Data and startup
// -----------------------------------------------------------------------

void
CodeGen::genGlobals()
{
    out_ << "\n.data\n";
    for (const GlobalDecl &g : unit_.globals) {
        out_ << ".align 2\n";
        label(g.sym->label);
        const Type *t = g.type;
        if (g.hasStrInit) {
            if (t->isPtr()) {
                // char *p = "..." : pool the string, emit a pointer.
                int idx = -1;
                for (size_t i = 0; i < unit_.stringPool.size(); ++i) {
                    if (unit_.stringPool[i] == g.strInit) {
                        idx = int(i);
                        break;
                    }
                }
                if (idx < 0) {
                    idx = int(unit_.stringPool.size());
                    unit_.stringPool.push_back(g.strInit);
                }
                out_ << "    .word Lstr" << idx << "\n";
            } else {
                // char arr[N] = "...".
                out_ << "    .asciiz \"" << escapeForAsm(g.strInit)
                     << "\"\n";
                const int used = int(g.strInit.size()) + 1;
                if (t->arraySize > used) {
                    out_ << "    .space " << (t->arraySize - used)
                         << "\n";
                }
            }
        } else if (g.hasInitList) {
            const Type *elem = t->base;
            for (const ExprPtr &e : g.initList) {
                ConstVal v = evalConst(*e);
                if (elem->isChar()) {
                    fatalIf(v.isLabel, "char initializer from label");
                    out_ << "    .byte " << (v.num & 0xff) << "\n";
                } else if (v.isLabel) {
                    out_ << "    .word " << v.label << "\n";
                } else {
                    out_ << "    .word " << uint32_t(v.num) << "\n";
                }
            }
            const int rest =
                (t->arraySize - int(g.initList.size())) * elem->size();
            if (rest > 0)
                out_ << "    .space " << rest << "\n";
        } else if (g.init) {
            ConstVal v = evalConst(*g.init);
            if (t->isChar()) {
                fatalIf(v.isLabel, "char initializer from label");
                out_ << "    .byte " << (v.num & 0xff) << "\n";
                out_ << "    .space 3\n";
            } else if (v.isLabel) {
                out_ << "    .word " << v.label << "\n";
            } else {
                out_ << "    .word " << uint32_t(v.num) << "\n";
            }
        } else {
            out_ << "    .space " << t->size() << "\n";
        }
    }

    // String pool.
    for (size_t i = 0; i < unit_.stringPool.size(); ++i) {
        out_ << ".align 2\n";
        out_ << "Lstr" << i << ":\n";
        out_ << "    .asciiz \"" << escapeForAsm(unit_.stringPool[i])
             << "\"\n";
    }
}

void
CodeGen::genStart()
{
    out_ << ".text\n";
    out_ << ".ent _start, 0\n";
    label("_start");
    emit("jal main");
    emit("move $a0, $v0");
    emit("li $v0, 1");
    emit("syscall");
    out_ << ".end _start\n";
    out_ << ".entry _start\n";
}

std::string
CodeGen::run()
{
    genStart();
    for (FuncDecl &f : unit_.funcs) {
        if (f.body)
            genFunction(f);
    }
    genGlobals();
    return out_.str();
}

} // namespace

std::string
generate(Unit &unit)
{
    CodeGen gen(unit);
    return gen.run();
}

} // namespace irep::minicc
