/**
 * @file
 * Semantic analysis for MiniC: symbol resolution, type checking,
 * lvalue classification, string-literal pooling, and constant
 * evaluation of global initializers. Annotates the AST in place.
 */

#ifndef IREP_MINICC_SEMA_HH
#define IREP_MINICC_SEMA_HH

#include "minicc/ast.hh"

namespace irep::minicc
{

/**
 * Analyze a parsed Unit. All type errors raise FatalError with a line
 * number. On return every Expr has `type` and `isLValue` set and every
 * Var/Call node is resolved.
 */
void analyze(Unit &unit);

/**
 * A compile-time constant: either a plain number or the address of a
 * global symbol (for pointer initializers and `.word label` emission).
 */
struct ConstVal
{
    bool isLabel = false;
    int64_t num = 0;
    std::string label;
};

/**
 * Evaluate a constant expression (used for global initializers).
 * fatal() when the expression is not compile-time constant.
 */
ConstVal evalConst(const Expr &expr);

} // namespace irep::minicc

#endif // IREP_MINICC_SEMA_HH
