/**
 * @file
 * Convenience front door for the MiniC toolchain: source text in,
 * assembly text or a loadable Program out.
 */

#ifndef IREP_MINICC_COMPILER_HH
#define IREP_MINICC_COMPILER_HH

#include <string>

#include "asm/program.hh"

namespace irep::minicc
{

/** Compile one MiniC translation unit to assembly text. */
std::string compileToAsm(const std::string &source);

/** Compile and assemble one MiniC translation unit. */
assem::Program compileToProgram(const std::string &source);

} // namespace irep::minicc

#endif // IREP_MINICC_COMPILER_HH
