/**
 * @file
 * Convenience front door for the MiniC toolchain: source text in,
 * assembly text or a loadable Program out.
 */

#ifndef IREP_MINICC_COMPILER_HH
#define IREP_MINICC_COMPILER_HH

#include <memory>
#include <string>

#include "asm/program.hh"
#include "minicc/ast.hh"

namespace irep::minicc
{

/**
 * Parse and analyze one MiniC translation unit without generating
 * code. The returned Unit is fully resolved (types, symbols, string
 * pool) — the form the reference interpreter and other AST consumers
 * work from.
 */
std::unique_ptr<Unit> compileToUnit(const std::string &source);

/** Compile one MiniC translation unit to assembly text. */
std::string compileToAsm(const std::string &source);

/** Generate assembly from an already-analyzed unit. */
std::string generateAsm(Unit &unit);

/** Compile and assemble one MiniC translation unit. */
assem::Program compileToProgram(const std::string &source);

} // namespace irep::minicc

#endif // IREP_MINICC_COMPILER_HH
