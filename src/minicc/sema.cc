#include "minicc/sema.hh"

#include <unordered_map>
#include <vector>

#include "sim/observer.hh"
#include "support/logging.hh"

namespace irep::minicc
{

namespace
{

class Sema
{
  public:
    explicit Sema(Unit &unit) : unit_(unit) {}

    void run();

  private:
    // --- scope handling -------------------------------------------------
    void pushScope() { scopes_.emplace_back(); }
    void popScope() { scopes_.pop_back(); }

    VarSym *declareLocal(const std::string &name, const Type *type,
                         int line);
    VarSym *lookupVar(const std::string &name);

    // --- declaration passes ----------------------------------------------
    void declareIntrinsics();
    void declareGlobals();
    void declareFunctions();
    void checkFunction(FuncDecl &f);

    // --- statements -------------------------------------------------------
    void stmt(Stmt &s);

    // --- expressions ------------------------------------------------------
    void expr(Expr &e);
    void exprRValue(Expr &e);
    const Type *decayed(const Type *t);
    void requireScalar(const Expr &e, const char *what);
    bool assignable(const Type *dst, const Expr &src);

    [[noreturn]] void
    err(int line, const std::string &msg) const
    {
        fatal("minicc: line ", line, ": ", msg);
    }

    Unit &unit_;
    std::unordered_map<std::string, FuncSym *> funcTable_;
    std::unordered_map<std::string, VarSym *> globalTable_;
    std::vector<std::unordered_map<std::string, VarSym *>> scopes_;
    FuncDecl *current_ = nullptr;
    int loopDepth_ = 0;
};

VarSym *
Sema::declareLocal(const std::string &name, const Type *type, int line)
{
    auto &scope = scopes_.back();
    if (scope.count(name))
        err(line, "duplicate declaration of '" + name + "'");
    VarSym *sym = unit_.newVar();
    sym->name = name;
    sym->type = type;
    sym->isGlobal = false;
    // Aggregates always live in memory.
    if (!type->isScalar())
        sym->addrTaken = true;
    scope.emplace(name, sym);
    current_->locals.push_back(sym);
    return sym;
}

VarSym *
Sema::lookupVar(const std::string &name)
{
    for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
        auto found = it->find(name);
        if (found != it->end())
            return found->second;
    }
    auto found = globalTable_.find(name);
    return found == globalTable_.end() ? nullptr : found->second;
}

void
Sema::declareIntrinsics()
{
    struct Row
    {
        const char *name;
        int syscall;
        int nargs;
    };
    static const Row rows[] = {
        {"__exit", int(sim::Syscall::Exit), 1},
        {"__read", int(sim::Syscall::Read), 2},
        {"__write", int(sim::Syscall::Write), 2},
        {"__sbrk", int(sim::Syscall::Sbrk), 1},
    };
    for (const Row &r : rows) {
        FuncSym *f = unit_.newFunc();
        f->name = r.name;
        f->retType = unit_.types.intType();
        for (int i = 0; i < r.nargs; ++i)
            f->paramTypes.push_back(unit_.types.intType());
        f->defined = true;
        f->intrinsic = r.syscall;
        funcTable_.emplace(f->name, f);
    }
}

void
Sema::declareGlobals()
{
    for (GlobalDecl &g : unit_.globals) {
        if (globalTable_.count(g.name) || funcTable_.count(g.name))
            err(g.line, "duplicate global '" + g.name + "'");
        VarSym *sym = unit_.newVar();
        sym->name = g.name;
        sym->type = g.type;
        sym->isGlobal = true;
        sym->home = VarHome::Global;
        sym->label = "g_" + g.name;
        g.sym = sym;
        globalTable_.emplace(g.name, sym);

        // Validate initializers.
        if (g.hasStrInit) {
            if (!(g.type->isArray() && g.type->base->isChar()) &&
                !(g.type->isPtr() && g.type->base->isChar())) {
                err(g.line, "string initializer requires char[] or "
                            "char*");
            }
            if (g.type->isArray() &&
                int(g.strInit.size()) + 1 > g.type->arraySize) {
                err(g.line, "string initializer too long");
            }
        } else if (g.hasInitList) {
            if (!g.type->isArray())
                err(g.line, "initializer list requires an array");
            if (int(g.initList.size()) > g.type->arraySize)
                err(g.line, "too many initializers");
            for (const ExprPtr &e : g.initList)
                evalConst(*e);  // fatal when non-constant
        } else if (g.init) {
            if (!g.type->isScalar())
                err(g.line, "scalar initializer on aggregate");
            evalConst(*g.init);
        }
    }
}

void
Sema::declareFunctions()
{
    for (FuncDecl &f : unit_.funcs) {
        auto it = funcTable_.find(f.name);
        FuncSym *sym;
        if (it != funcTable_.end()) {
            sym = it->second;
            if (sym->intrinsic >= 0)
                err(f.line, "cannot redefine intrinsic '" + f.name +
                                "'");
            // Signature must match the earlier declaration.
            if (sym->retType != f.retType ||
                sym->paramTypes.size() != f.params.size())
                err(f.line, "conflicting declaration of '" + f.name +
                                "'");
            for (size_t i = 0; i < f.params.size(); ++i) {
                if (sym->paramTypes[i] != f.params[i].second)
                    err(f.line, "conflicting parameter types for '" +
                                    f.name + "'");
            }
            if (f.body && sym->defined)
                err(f.line, "redefinition of '" + f.name + "'");
        } else {
            sym = unit_.newFunc();
            sym->name = f.name;
            sym->retType = f.retType;
            for (const auto &p : f.params)
                sym->paramTypes.push_back(p.second);
            funcTable_.emplace(f.name, sym);
        }
        if (f.body)
            sym->defined = true;
        f.sym = sym;
    }
}

const Type *
Sema::decayed(const Type *t)
{
    if (t->isArray())
        return unit_.types.ptrTo(t->base);
    return t;
}

void
Sema::requireScalar(const Expr &e, const char *what)
{
    if (!decayed(e.type)->isScalar())
        err(e.line, std::string(what) + " requires a scalar value");
}

bool
Sema::assignable(const Type *dst, const Expr &src)
{
    const Type *s = decayed(src.type);
    if (dst->isArith() && s->isArith())
        return true;
    if (dst->isPtr() && s->isPtr())
        return true;    // old-C style loose pointer compatibility
    if (dst->isPtr() && src.kind == ExprKind::IntLit &&
        src.intValue == 0)
        return true;    // null pointer constant
    return false;
}

void
Sema::exprRValue(Expr &e)
{
    expr(e);
    if (e.type->isVoid())
        err(e.line, "void value used");
}

void
Sema::expr(Expr &e)
{
    switch (e.kind) {
      case ExprKind::IntLit:
        e.type = unit_.types.intType();
        break;

      case ExprKind::StrLit: {
        // Intern in the string pool; identical literals share a label.
        for (size_t i = 0; i < unit_.stringPool.size(); ++i) {
            if (unit_.stringPool[i] == e.strValue) {
                e.strLabel = int(i);
                break;
            }
        }
        if (e.strLabel < 0) {
            e.strLabel = int(unit_.stringPool.size());
            unit_.stringPool.push_back(e.strValue);
        }
        e.type = unit_.types.ptrTo(unit_.types.charType());
        break;
      }

      case ExprKind::Var: {
        VarSym *sym = lookupVar(e.strValue);
        if (!sym)
            err(e.line, "undeclared identifier '" + e.strValue + "'");
        e.var = sym;
        e.type = sym->type;
        e.isLValue = true;
        break;
      }

      case ExprKind::Unary: {
        if (e.op == "&") {
            expr(*e.a);
            if (!e.a->isLValue)
                err(e.line, "'&' requires an lvalue");
            if (e.a->kind == ExprKind::Var)
                e.a->var->addrTaken = true;
            e.type = unit_.types.ptrTo(e.a->type->isArray()
                                           ? e.a->type->base
                                           : e.a->type);
            break;
        }
        exprRValue(*e.a);
        const Type *at = decayed(e.a->type);
        if (e.op == "*") {
            if (!at->isPtr())
                err(e.line, "'*' requires a pointer");
            if (at->base->isVoid())
                err(e.line, "cannot dereference void*");
            e.type = at->base;
            e.isLValue = true;
        } else if (e.op == "!") {
            requireScalar(*e.a, "'!'");
            e.type = unit_.types.intType();
        } else {
            if (!at->isArith())
                err(e.line, "'" + e.op + "' requires an arithmetic "
                                         "operand");
            e.type = unit_.types.intType();
        }
        break;
      }

      case ExprKind::Binary: {
        exprRValue(*e.a);
        exprRValue(*e.b);
        const Type *at = decayed(e.a->type);
        const Type *bt = decayed(e.b->type);

        if (e.op == "+" ) {
            if (at->isPtr() && bt->isArith())
                e.type = at;
            else if (at->isArith() && bt->isPtr())
                e.type = bt;
            else if (at->isArith() && bt->isArith())
                e.type = unit_.types.intType();
            else
                err(e.line, "bad operands to '+'");
        } else if (e.op == "-") {
            if (at->isPtr() && bt->isArith())
                e.type = at;
            else if (at->isPtr() && bt->isPtr())
                e.type = unit_.types.intType();
            else if (at->isArith() && bt->isArith())
                e.type = unit_.types.intType();
            else
                err(e.line, "bad operands to '-'");
        } else if (e.op == "==" || e.op == "!=" || e.op == "<" ||
                   e.op == ">" || e.op == "<=" || e.op == ">=") {
            const bool ok = (at->isArith() && bt->isArith()) ||
                            (at->isPtr() && bt->isPtr()) ||
                            (at->isPtr() && e.b->kind ==
                                ExprKind::IntLit && e.b->intValue == 0) ||
                            (bt->isPtr() && e.a->kind ==
                                ExprKind::IntLit && e.a->intValue == 0);
            if (!ok)
                err(e.line, "bad operands to '" + e.op + "'");
            e.type = unit_.types.intType();
        } else if (e.op == "&&" || e.op == "||") {
            requireScalar(*e.a, "logical operator");
            requireScalar(*e.b, "logical operator");
            e.type = unit_.types.intType();
        } else {
            // * / % << >> & | ^ : arithmetic only.
            if (!at->isArith() || !bt->isArith())
                err(e.line, "bad operands to '" + e.op + "'");
            e.type = unit_.types.intType();
        }
        break;
      }

      case ExprKind::Assign: {
        expr(*e.a);
        exprRValue(*e.b);
        if (!e.a->isLValue)
            err(e.line, "assignment target is not an lvalue");
        if (!e.a->type->isScalar())
            err(e.line, "assignment target must be scalar");
        if (e.op == "=") {
            if (!assignable(e.a->type, *e.b))
                err(e.line, "incompatible types in assignment (" +
                                e.a->type->str() + " = " +
                                decayed(e.b->type)->str() + ")");
        } else if (e.op == "+=" || e.op == "-=") {
            const Type *bt = decayed(e.b->type);
            if (e.a->type->isPtr()) {
                if (!bt->isArith())
                    err(e.line, "pointer " + e.op + " needs integer");
            } else if (!(e.a->type->isArith() && bt->isArith())) {
                err(e.line, "bad operands to '" + e.op + "'");
            }
        } else {
            const Type *bt = decayed(e.b->type);
            if (!e.a->type->isArith() || !bt->isArith())
                err(e.line, "bad operands to '" + e.op + "'");
        }
        e.type = e.a->type;
        break;
      }

      case ExprKind::Cond: {
        exprRValue(*e.a);
        requireScalar(*e.a, "'?:' condition");
        exprRValue(*e.b);
        exprRValue(*e.c);
        const Type *bt = decayed(e.b->type);
        const Type *ct = decayed(e.c->type);
        if (bt->isArith() && ct->isArith())
            e.type = unit_.types.intType();
        else if (bt->isPtr() && ct->isPtr())
            e.type = bt;
        else if (bt->isPtr() && e.c->kind == ExprKind::IntLit &&
                 e.c->intValue == 0)
            e.type = bt;
        else if (ct->isPtr() && e.b->kind == ExprKind::IntLit &&
                 e.b->intValue == 0)
            e.type = ct;
        else
            err(e.line, "incompatible '?:' branches");
        break;
      }

      case ExprKind::Call: {
        auto it = funcTable_.find(e.callee);
        if (it == funcTable_.end())
            err(e.line, "call to undeclared function '" + e.callee +
                            "'");
        FuncSym *f = it->second;
        if (e.args.size() != f->paramTypes.size())
            err(e.line, "'" + e.callee + "' expects " +
                            std::to_string(f->paramTypes.size()) +
                            " arguments");
        for (size_t i = 0; i < e.args.size(); ++i) {
            exprRValue(*e.args[i]);
            if (!assignable(f->paramTypes[i], *e.args[i]) &&
                !(f->paramTypes[i]->isArith() &&
                  decayed(e.args[i]->type)->isPtr() &&
                  f->intrinsic >= 0)) {
                err(e.args[i]->line,
                    "argument " + std::to_string(i + 1) + " of '" +
                        e.callee + "' has incompatible type");
            }
        }
        e.func = f;
        e.type = f->retType;
        break;
      }

      case ExprKind::Index: {
        exprRValue(*e.a);
        exprRValue(*e.b);
        const Type *at = decayed(e.a->type);
        if (!at->isPtr())
            err(e.line, "subscripted value is not a pointer or array");
        if (!decayed(e.b->type)->isArith())
            err(e.line, "array subscript is not an integer");
        e.type = at->base;
        e.isLValue = true;
        break;
      }

      case ExprKind::Member: {
        expr(*e.a);
        const Type *at = e.a->type;
        const StructDef *def = nullptr;
        if (e.isArrow) {
            const Type *pt = decayed(at);
            if (!pt->isPtr() || !pt->base->isStruct())
                err(e.line, "'->' requires a pointer to struct");
            def = pt->base->sdef;
        } else {
            if (!at->isStruct())
                err(e.line, "'.' requires a struct");
            if (!e.a->isLValue)
                err(e.line, "'.' requires an lvalue struct");
            def = at->sdef;
        }
        const StructMember *m = def->member(e.strValue);
        if (!m)
            err(e.line, "no member '" + e.strValue + "' in struct " +
                            def->name);
        e.memberRef = m;
        e.type = m->type;
        e.isLValue = true;
        break;
      }

      case ExprKind::Cast: {
        exprRValue(*e.a);
        const Type *src = decayed(e.a->type);
        const Type *dst = e.namedType;
        if (!dst->isScalar() && !dst->isVoid())
            err(e.line, "cast target must be scalar");
        if (!src->isScalar())
            err(e.line, "cast source must be scalar");
        e.type = dst;
        break;
      }

      case ExprKind::IncDec: {
        expr(*e.a);
        if (!e.a->isLValue)
            err(e.line, "'" + e.op + "' requires an lvalue");
        if (!e.a->type->isScalar())
            err(e.line, "'" + e.op + "' requires a scalar");
        e.type = e.a->type;
        break;
      }

      case ExprKind::SizeofType:
        e.type = unit_.types.intType();
        e.intValue = e.namedType->size();
        break;
    }
}

void
Sema::stmt(Stmt &s)
{
    switch (s.kind) {
      case StmtKind::Expr:
        // Expression statements may discard a void call's "value".
        expr(*s.expr);
        break;
      case StmtKind::If:
        exprRValue(*s.expr);
        requireScalar(*s.expr, "if condition");
        stmt(*s.then);
        if (s.els)
            stmt(*s.els);
        break;
      case StmtKind::While:
      case StmtKind::DoWhile:
        exprRValue(*s.expr);
        requireScalar(*s.expr, "loop condition");
        ++loopDepth_;
        stmt(*s.body);
        --loopDepth_;
        break;
      case StmtKind::For:
        pushScope();
        if (s.init)
            stmt(*s.init);
        if (s.cond) {
            exprRValue(*s.cond);
            requireScalar(*s.cond, "for condition");
        }
        if (s.inc)
            expr(*s.inc);   // increment may be a void call
        ++loopDepth_;
        stmt(*s.body);
        --loopDepth_;
        popScope();
        break;
      case StmtKind::Return:
        if (s.expr) {
            exprRValue(*s.expr);
            if (current_->retType->isVoid())
                err(s.line, "return value in void function");
            if (!assignable(current_->retType, *s.expr))
                err(s.line, "incompatible return type");
        } else if (!current_->retType->isVoid()) {
            err(s.line, "missing return value");
        }
        break;
      case StmtKind::Break:
        if (!loopDepth_)
            err(s.line, "break outside a loop");
        break;
      case StmtKind::Continue:
        if (!loopDepth_)
            err(s.line, "continue outside a loop");
        break;
      case StmtKind::Block:
        pushScope();
        for (StmtPtr &child : s.stmts)
            stmt(*child);
        popScope();
        break;
      case StmtKind::Decl:
        for (LocalDecl &d : s.decls) {
            if (d.init) {
                exprRValue(*d.init);
                // Note: the variable is not in scope for its own
                // initializer, matching C's declare-after-init here.
            }
            d.sym = declareLocal(d.name, d.type, s.line);
            if (d.init) {
                if (!d.type->isScalar())
                    err(s.line, "initializer on aggregate local");
                if (!assignable(d.type, *d.init))
                    err(s.line, "incompatible initializer for '" +
                                    d.name + "'");
            }
        }
        break;
    }
}

void
Sema::checkFunction(FuncDecl &f)
{
    current_ = &f;
    loopDepth_ = 0;
    pushScope();
    int index = 0;
    for (const auto &[name, type] : f.params) {
        if (scopes_.back().count(name))
            err(f.line, "duplicate parameter '" + name + "'");
        VarSym *sym = unit_.newVar();
        sym->name = name;
        sym->type = type;
        sym->paramIndex = index++;
        scopes_.back().emplace(name, sym);
        f.paramSyms.push_back(sym);
    }
    stmt(*f.body);
    popScope();
    current_ = nullptr;
}

void
Sema::run()
{
    declareIntrinsics();
    declareGlobals();
    declareFunctions();
    for (FuncDecl &f : unit_.funcs) {
        if (f.body)
            checkFunction(f);
    }
    // Every referenced function must be defined somewhere in the unit.
    for (const auto &[name, sym] : funcTable_) {
        if (!sym->defined)
            fatal("minicc: undefined function '", name, "'");
    }
}

} // namespace

ConstVal
evalConst(const Expr &expr)
{
    switch (expr.kind) {
      case ExprKind::IntLit:
      case ExprKind::SizeofType: {
        ConstVal v;
        v.num = expr.intValue;
        return v;
      }
      case ExprKind::Var: {
        // Address-of-global initializer: `int *p = arr;` style decay is
        // not supported; use explicit literals. We do allow a named
        // global as a label constant for pointer initializers.
        ConstVal v;
        v.isLabel = true;
        v.label = "g_" + expr.strValue;
        return v;
      }
      case ExprKind::Unary: {
        ConstVal a = evalConst(*expr.a);
        fatalIf(a.isLabel, "minicc: line ", expr.line,
                ": non-constant initializer");
        ConstVal v;
        if (expr.op == "-")
            v.num = -a.num;
        else if (expr.op == "~")
            v.num = ~a.num;
        else if (expr.op == "!")
            v.num = !a.num;
        else
            fatal("minicc: line ", expr.line,
                  ": non-constant initializer");
        return v;
      }
      case ExprKind::Binary: {
        ConstVal a = evalConst(*expr.a);
        ConstVal b = evalConst(*expr.b);
        fatalIf(a.isLabel || b.isLabel, "minicc: line ", expr.line,
                ": non-constant initializer");
        const int32_t x = int32_t(a.num), y = int32_t(b.num);
        ConstVal v;
        if (expr.op == "+") v.num = x + y;
        else if (expr.op == "-") v.num = x - y;
        else if (expr.op == "*") v.num = x * y;
        else if (expr.op == "/") v.num = y ? x / y : 0;
        else if (expr.op == "%") v.num = y ? x % y : 0;
        else if (expr.op == "<<") v.num = x << (y & 31);
        else if (expr.op == ">>") v.num = x >> (y & 31);
        else if (expr.op == "&") v.num = x & y;
        else if (expr.op == "|") v.num = x | y;
        else if (expr.op == "^") v.num = x ^ y;
        else
            fatal("minicc: line ", expr.line,
                  ": non-constant initializer");
        return v;
      }
      default:
        fatal("minicc: line ", expr.line, ": non-constant initializer");
    }
}

void
analyze(Unit &unit)
{
    Sema sema(unit);
    sema.run();
}

} // namespace irep::minicc
