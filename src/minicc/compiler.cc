#include "minicc/compiler.hh"

#include "asm/assembler.hh"
#include "minicc/codegen.hh"
#include "minicc/parser.hh"
#include "minicc/sema.hh"

namespace irep::minicc
{

std::unique_ptr<Unit>
compileToUnit(const std::string &source)
{
    auto unit = parse(source);
    analyze(*unit);
    return unit;
}

std::string
generateAsm(Unit &unit)
{
    return generate(unit);
}

std::string
compileToAsm(const std::string &source)
{
    auto unit = parse(source);
    analyze(*unit);
    return generate(*unit);
}

assem::Program
compileToProgram(const std::string &source)
{
    return assem::assemble(compileToAsm(source));
}

} // namespace irep::minicc
