#include "fuzz/interp.hh"

#include <array>
#include <cstring>
#include <memory>
#include <unordered_map>
#include <vector>

#include "asm/program.hh"
#include "minicc/sema.hh"
#include "sim/observer.hh"
#include "support/logging.hh"

namespace irep::fuzz
{

namespace
{

using minicc::Expr;
using minicc::ExprKind;
using minicc::FuncDecl;
using minicc::GlobalDecl;
using minicc::Stmt;
using minicc::StmtKind;
using minicc::Type;
using minicc::Unit;
using minicc::VarSym;

/** Internal fault; converted to InterpResult::error at the boundary. */
struct InterpError
{
    std::string text;
};

[[noreturn]] void
die(std::string text)
{
    throw InterpError{std::move(text)};
}

/** Sparse zero-filled byte memory, little-endian like sim::Memory. */
class ByteMemory
{
  public:
    static constexpr uint32_t pageBits = 12;
    static constexpr uint32_t pageSize = 1u << pageBits;

    uint8_t *
    at(uint32_t addr)
    {
        auto &page = pages_[addr >> pageBits];
        if (!page) {
            page = std::make_unique<std::array<uint8_t, pageSize>>();
            page->fill(0);
        }
        return page->data() + (addr & (pageSize - 1));
    }

    uint32_t read8(uint32_t a) { return *at(a); }

    uint32_t
    read32(uint32_t a)
    {
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= uint32_t(*at(a + uint32_t(i))) << (8 * i);
        return v;
    }

    void write8(uint32_t a, uint32_t v) { *at(a) = uint8_t(v); }

    void
    write32(uint32_t a, uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            *at(a + uint32_t(i)) = uint8_t(v >> (8 * i));
    }

    void
    writeBlock(uint32_t a, const void *src, uint32_t len)
    {
        const auto *p = static_cast<const uint8_t *>(src);
        for (uint32_t i = 0; i < len; ++i)
            *at(a + i) = p[i];
    }

    void
    readBlock(uint32_t a, void *dst, uint32_t len)
    {
        auto *p = static_cast<uint8_t *>(dst);
        for (uint32_t i = 0; i < len; ++i)
            p[i] = *at(a + i);
    }

  private:
    std::unordered_map<uint32_t,
                       std::unique_ptr<std::array<uint8_t, pageSize>>>
        pages_;
};

/** How a statement finished. */
enum class Flow : uint8_t
{
    Normal,
    Break,
    Continue,
    Return,
};

/** A resolved assignment target: a direct slot or a memory address. */
struct LValue
{
    uint32_t *slot = nullptr;   //!< non-null for register-like vars
    uint32_t addr = 0;          //!< memory address otherwise
    const Type *type = nullptr;
};

/** One activation record. */
struct Frame
{
    std::unordered_map<const VarSym *, uint32_t> slots;
    std::unordered_map<const VarSym *, uint32_t> addrs;
};

class Interp
{
  public:
    Interp(const Unit &unit, const std::string &input,
           const InterpLimits &limits)
        : unit_(unit), input_(input), limits_(limits)
    {}

    InterpResult run();

  private:
    // --- setup ---------------------------------------------------------
    void layoutGlobals();
    void initGlobals();
    uint32_t internString(const std::string &body);

    // --- execution -----------------------------------------------------
    uint32_t callFunction(const FuncDecl &f,
                          const std::vector<uint32_t> &args);
    Flow execStmt(const Stmt &s);
    uint32_t evalExpr(const Expr &e);
    LValue evalLValue(const Expr &e);
    LValue varLValue(const VarSym *v);
    uint32_t loadLValue(const LValue &lv);
    void storeLValue(const LValue &lv, uint32_t value);
    uint32_t evalBinaryOp(const std::string &op, uint32_t a,
                          uint32_t b, bool unsigned_cmp);
    uint32_t doSyscall(int number, const std::vector<uint32_t> &args);

    /** Convert a value to @p type (chars mask to one byte). */
    static uint32_t
    convert(uint32_t value, const Type *type)
    {
        return type->isChar() ? (value & 0xff) : value;
    }

    void
    step()
    {
        if (++steps_ > limits_.maxSteps)
            die("step budget exceeded (likely non-termination)");
    }

    const Unit &unit_;
    const std::string &input_;
    InterpLimits limits_;

    ByteMemory mem_;
    std::unordered_map<const VarSym *, uint32_t> globalAddr_;
    std::unordered_map<std::string, uint32_t> labelAddr_;
    std::vector<std::string> pool_;         //!< interned string bodies
    std::vector<uint32_t> poolAddr_;
    std::unordered_map<std::string, const FuncDecl *> funcs_;

    std::vector<Frame> frames_;
    uint32_t sp_ = assem::Layout::stackTop;
    uint32_t brk_ = 0;
    uint32_t heapStart_ = 0;

    size_t inputPos_ = 0;
    std::string output_;
    uint64_t steps_ = 0;
    uint32_t returnValue_ = 0;

    bool halted_ = false;
    int exitCode_ = 0;
};

// -----------------------------------------------------------------------
// Layout and global initialization
// -----------------------------------------------------------------------

uint32_t
Interp::internString(const std::string &body)
{
    for (size_t i = 0; i < pool_.size(); ++i) {
        if (pool_[i] == body)
            return uint32_t(i);
    }
    pool_.push_back(body);
    return uint32_t(pool_.size() - 1);
}

void
Interp::layoutGlobals()
{
    // Mirrors codegen's .data section shape: every global 4-aligned,
    // the string pool after the globals. Absolute addresses differ
    // from the compiled image, which is fine — MiniC programs cannot
    // observe raw pointer values, only differences and ordering
    // within one object.
    uint32_t addr = assem::Layout::dataBase;
    for (const GlobalDecl &g : unit_.globals) {
        addr = (addr + 3u) & ~3u;
        globalAddr_[g.sym] = addr;
        labelAddr_[g.sym->label] = addr;
        addr += uint32_t(g.type->size());
    }

    pool_ = unit_.stringPool;
    for (const GlobalDecl &g : unit_.globals) {
        if (g.hasStrInit && g.type->isPtr())
            internString(g.strInit);
    }
    poolAddr_.resize(pool_.size());
    for (size_t i = 0; i < pool_.size(); ++i) {
        addr = (addr + 3u) & ~3u;
        poolAddr_[i] = addr;
        addr += uint32_t(pool_[i].size()) + 1;
    }

    heapStart_ = (addr + ByteMemory::pageSize - 1) &
                 ~(ByteMemory::pageSize - 1);
    brk_ = heapStart_;
}

void
Interp::initGlobals()
{
    auto constValue = [&](const Expr &e) -> uint32_t {
        const minicc::ConstVal v = minicc::evalConst(e);
        if (!v.isLabel)
            return uint32_t(v.num);
        auto it = labelAddr_.find(v.label);
        if (it == labelAddr_.end())
            die("initializer references unknown global '" + v.label +
                "'");
        return it->second;
    };

    for (const GlobalDecl &g : unit_.globals) {
        const uint32_t base = globalAddr_.at(g.sym);
        if (g.hasStrInit) {
            if (g.type->isPtr()) {
                mem_.write32(base,
                             poolAddr_[internString(g.strInit)]);
            } else {
                mem_.writeBlock(base, g.strInit.data(),
                                uint32_t(g.strInit.size()));
                // NUL terminator and zero padding are already there.
            }
        } else if (g.hasInitList) {
            const Type *elem = g.type->base;
            uint32_t addr = base;
            for (const minicc::ExprPtr &e : g.initList) {
                const uint32_t v = constValue(*e);
                if (elem->isChar()) {
                    mem_.write8(addr, v);
                    addr += 1;
                } else {
                    mem_.write32(addr, v);
                    addr += 4;
                }
            }
        } else if (g.init) {
            const uint32_t v = constValue(*g.init);
            if (g.type->isChar())
                mem_.write8(base, v);
            else
                mem_.write32(base, v);
        }
    }

    for (size_t i = 0; i < pool_.size(); ++i) {
        mem_.writeBlock(poolAddr_[i], pool_[i].data(),
                        uint32_t(pool_[i].size()));
    }
}

// -----------------------------------------------------------------------
// Syscalls
// -----------------------------------------------------------------------

uint32_t
Interp::doSyscall(int number, const std::vector<uint32_t> &args)
{
    const uint32_t arg0 = args.size() > 0 ? args[0] : 0;
    const uint32_t arg1 = args.size() > 1 ? args[1] : 0;
    switch (sim::Syscall(number)) {
      case sim::Syscall::Exit:
        halted_ = true;
        exitCode_ = int(arg0);
        return arg0;
      case sim::Syscall::Read: {
        const uint32_t avail = uint32_t(input_.size() - inputPos_);
        const uint32_t n = arg1 < avail ? arg1 : avail;
        if (n)
            mem_.writeBlock(arg0, input_.data() + inputPos_, n);
        inputPos_ += n;
        return n;
      }
      case sim::Syscall::Write: {
        const uint32_t n = arg1;
        if (output_.size() + n > limits_.maxOutputBytes)
            die("output budget exceeded");
        if (n) {
            const size_t old = output_.size();
            output_.resize(old + n);
            mem_.readBlock(arg0, output_.data() + old, n);
        }
        return n;
      }
      case sim::Syscall::Sbrk: {
        const uint32_t old = brk_;
        const int64_t inc = int64_t(int32_t(arg0));
        const int64_t next = int64_t(old) + inc;
        if (next < int64_t(heapStart_) ||
            next >= int64_t(assem::Layout::stackRegionBase))
            die("sbrk moves the break outside the heap segment");
        brk_ = uint32_t(next);
        return old;
      }
    }
    die("unknown syscall number " + std::to_string(number));
}

// -----------------------------------------------------------------------
// LValues
// -----------------------------------------------------------------------

LValue
Interp::varLValue(const VarSym *v)
{
    LValue lv;
    lv.type = v->type;
    if (v->isGlobal) {
        lv.addr = globalAddr_.at(v);
        return lv;
    }
    Frame &frame = frames_.back();
    auto slot = frame.slots.find(v);
    if (slot != frame.slots.end()) {
        lv.slot = &slot->second;
        return lv;
    }
    auto addr = frame.addrs.find(v);
    if (addr == frame.addrs.end())
        die("unresolved variable '" + v->name + "'");
    lv.addr = addr->second;
    return lv;
}

LValue
Interp::evalLValue(const Expr &e)
{
    switch (e.kind) {
      case ExprKind::Var:
        return varLValue(e.var);
      case ExprKind::Unary: {
        // Deref: the operand is the address.
        if (e.op != "*")
            die("unary '" + e.op + "' is not an lvalue");
        LValue lv;
        lv.addr = evalExpr(*e.a);
        lv.type = e.type;
        return lv;
      }
      case ExprKind::Index: {
        // Mirrors codegen: base address first, then the subscript.
        const uint32_t base = evalExpr(*e.a);
        const uint32_t idx = evalExpr(*e.b);
        LValue lv;
        lv.addr = base + idx * uint32_t(e.type->size());
        lv.type = e.type;
        return lv;
      }
      case ExprKind::Member: {
        uint32_t base;
        if (e.isArrow) {
            base = evalExpr(*e.a);
        } else {
            const LValue blv = evalLValue(*e.a);
            if (blv.slot)
                die("member access on register variable");
            base = blv.addr;
        }
        LValue lv;
        lv.addr = base + uint32_t(e.memberRef->offset);
        lv.type = e.type;
        return lv;
      }
      default:
        die("expression is not an lvalue");
    }
}

uint32_t
Interp::loadLValue(const LValue &lv)
{
    if (lv.slot)
        return *lv.slot;
    if (!lv.type->isScalar())
        return lv.addr;     // aggregates evaluate to their address
    return lv.type->isChar() ? mem_.read8(lv.addr)
                             : mem_.read32(lv.addr);
}

void
Interp::storeLValue(const LValue &lv, uint32_t value)
{
    if (lv.slot) {
        *lv.slot = convert(value, lv.type);
        return;
    }
    if (lv.type->isChar())
        mem_.write8(lv.addr, value);
    else
        mem_.write32(lv.addr, value);
}

// -----------------------------------------------------------------------
// Expressions
// -----------------------------------------------------------------------

namespace sem
{

/** MiPS DIV semantics: /0 yields 0, INT_MIN / -1 yields INT_MIN. */
int32_t
div32(int32_t a, int32_t b)
{
    if (b == 0)
        return 0;
    if (a == INT32_MIN && b == -1)
        return INT32_MIN;
    return a / b;
}

int32_t
rem32(int32_t a, int32_t b)
{
    if (b == 0)
        return 0;
    if (a == INT32_MIN && b == -1)
        return 0;
    return a % b;
}

} // namespace sem

uint32_t
Interp::evalBinaryOp(const std::string &op, uint32_t a, uint32_t b,
                     bool unsigned_cmp)
{
    const int32_t sa = int32_t(a), sb = int32_t(b);
    if (op == "+")
        return a + b;
    if (op == "-")
        return a - b;
    if (op == "*")
        return uint32_t(int64_t(sa) * int64_t(sb));
    if (op == "/")
        return uint32_t(sem::div32(sa, sb));
    if (op == "%")
        return uint32_t(sem::rem32(sa, sb));
    if (op == "&")
        return a & b;
    if (op == "|")
        return a | b;
    if (op == "^")
        return a ^ b;
    if (op == "<<")
        return a << (b & 31);
    if (op == ">>")
        return uint32_t(sa >> (b & 31));
    if (op == "==")
        return a == b;
    if (op == "!=")
        return a != b;
    if (op == "<")
        return unsigned_cmp ? a < b : sa < sb;
    if (op == ">")
        return unsigned_cmp ? a > b : sa > sb;
    if (op == "<=")
        return unsigned_cmp ? a <= b : sa <= sb;
    if (op == ">=")
        return unsigned_cmp ? a >= b : sa >= sb;
    die("unhandled binary operator '" + op + "'");
}

uint32_t
Interp::evalExpr(const Expr &e)
{
    step();
    switch (e.kind) {
      case ExprKind::IntLit:
      case ExprKind::SizeofType:
        return uint32_t(e.intValue);

      case ExprKind::StrLit:
        return poolAddr_.at(size_t(e.strLabel));

      case ExprKind::Var:
        return loadLValue(evalLValue(e));

      case ExprKind::Unary: {
        if (e.op == "&") {
            const LValue lv = evalLValue(*e.a);
            if (lv.slot)
                die("address of register variable");
            return lv.addr;
        }
        const uint32_t v = evalExpr(*e.a);
        if (e.op == "*") {
            if (!e.type->isScalar())
                return v;   // *p on struct pointer: the address
            return e.type->isChar() ? mem_.read8(v) : mem_.read32(v);
        }
        if (e.op == "-")
            return 0u - v;
        if (e.op == "~")
            return ~v;
        if (e.op == "!")
            return v == 0;
        die("unhandled unary operator '" + e.op + "'");
      }

      case ExprKind::Binary: {
        const Type *at = e.a->type->isArray()
            ? nullptr : e.a->type;  // array decays to pointer
        const Type *bt = e.b->type->isArray() ? nullptr : e.b->type;
        const bool a_ptr = !at || at->isPtr();
        const bool b_ptr = !bt || bt->isPtr();

        if (e.op == "&&" || e.op == "||") {
            const uint32_t a = evalExpr(*e.a);
            if (e.op == "&&" && a == 0)
                return 0;
            if (e.op == "||" && a != 0)
                return 1;
            return evalExpr(*e.b) != 0;
        }

        const uint32_t a = evalExpr(*e.a);
        const uint32_t b = evalExpr(*e.b);

        // Pointer arithmetic scales by the element size; pointer
        // difference divides by it (sra for powers of two, signed
        // division otherwise — exactly what codegen emits).
        if (e.op == "+" || e.op == "-") {
            const Type *abase = e.a->type->isArray()
                ? e.a->type->base
                : (e.a->type->isPtr() ? e.a->type->base : nullptr);
            const Type *bbase = e.b->type->isArray()
                ? e.b->type->base
                : (e.b->type->isPtr() ? e.b->type->base : nullptr);
            if (a_ptr && b_ptr && e.op == "-") {
                const uint32_t diff = a - b;
                const int size = abase->size();
                if (size <= 1)
                    return diff;
                if ((size & (size - 1)) == 0) {
                    int shift = 0;
                    while ((1 << shift) != size)
                        ++shift;
                    return uint32_t(int32_t(diff) >> shift);
                }
                return uint32_t(
                    sem::div32(int32_t(diff), int32_t(size)));
            }
            if (a_ptr && !b_ptr) {
                const uint32_t scaled =
                    b * uint32_t(abase->size());
                return e.op == "+" ? a + scaled : a - scaled;
            }
            if (!a_ptr && b_ptr)    // int + ptr only; sema rejects -
                return b + a * uint32_t(bbase->size());
        }

        return evalBinaryOp(e.op, a, b, a_ptr || b_ptr);
      }

      case ExprKind::Assign: {
        if (e.op == "=") {
            // rhs first, then the target address (codegen's order).
            const uint32_t v =
                convert(evalExpr(*e.b), e.a->type);
            storeLValue(evalLValue(*e.a), v);
            return v;
        }
        // Compound: target address first, then load, then rhs.
        const LValue lv = evalLValue(*e.a);
        const uint32_t old = loadLValue(lv);
        uint32_t rhs = evalExpr(*e.b);
        const std::string base_op =
            e.op.substr(0, e.op.size() - 1);
        if (e.a->type->isPtr() &&
            (base_op == "+" || base_op == "-"))
            rhs *= uint32_t(e.a->type->base->size());
        const uint32_t v = convert(
            evalBinaryOp(base_op, old, rhs, false), e.a->type);
        storeLValue(lv, v);
        return v;
      }

      case ExprKind::Cond: {
        const uint32_t c = evalExpr(*e.a);
        return c != 0 ? evalExpr(*e.b) : evalExpr(*e.c);
      }

      case ExprKind::Call: {
        std::vector<uint32_t> args;
        args.reserve(e.args.size());
        for (size_t i = 0; i < e.args.size(); ++i) {
            args.push_back(convert(evalExpr(*e.args[i]),
                                   e.func->paramTypes[i]));
        }
        if (halted_)
            return 0;
        if (e.func->intrinsic >= 0)
            return doSyscall(e.func->intrinsic, args);
        auto it = funcs_.find(e.callee);
        if (it == funcs_.end())
            die("call to undefined function '" + e.callee + "'");
        return callFunction(*it->second, args);
      }

      case ExprKind::Index:
      case ExprKind::Member:
        return loadLValue(evalLValue(e));

      case ExprKind::Cast:
        return convert(evalExpr(*e.a), e.type);

      case ExprKind::IncDec: {
        const LValue lv = evalLValue(*e.a);
        const uint32_t old = loadLValue(lv);
        const uint32_t delta = e.a->type->isPtr()
            ? uint32_t(e.a->type->base->size()) : 1u;
        const uint32_t next = convert(
            e.op == "++" ? old + delta : old - delta, e.a->type);
        storeLValue(lv, next);
        return e.isPrefix ? next : old;
      }
    }
    die("unhandled expression kind");
}

// -----------------------------------------------------------------------
// Statements
// -----------------------------------------------------------------------

Flow
Interp::execStmt(const Stmt &s)
{
    step();
    if (halted_)
        return Flow::Return;
    switch (s.kind) {
      case StmtKind::Expr:
        evalExpr(*s.expr);
        return Flow::Normal;

      case StmtKind::If:
        if (evalExpr(*s.expr) != 0)
            return execStmt(*s.then);
        if (s.els)
            return execStmt(*s.els);
        return Flow::Normal;

      case StmtKind::While:
        while (!halted_ && evalExpr(*s.expr) != 0) {
            step();
            const Flow f = execStmt(*s.body);
            if (f == Flow::Break)
                break;
            if (f == Flow::Return)
                return f;
        }
        return Flow::Normal;

      case StmtKind::DoWhile:
        do {
            step();
            const Flow f = execStmt(*s.body);
            if (f == Flow::Break)
                break;
            if (f == Flow::Return)
                return f;
        } while (!halted_ && evalExpr(*s.expr) != 0);
        return Flow::Normal;

      case StmtKind::For: {
        if (s.init)
            execStmt(*s.init);
        while (!halted_ &&
               (!s.cond || evalExpr(*s.cond) != 0)) {
            step();
            const Flow f = execStmt(*s.body);
            if (f == Flow::Return)
                return f;
            if (f == Flow::Break)
                break;
            if (halted_)
                break;
            if (s.inc)
                evalExpr(*s.inc);
        }
        return Flow::Normal;
      }

      case StmtKind::Return:
        if (s.expr)
            returnValue_ = evalExpr(*s.expr);
        else
            returnValue_ = 0;
        return Flow::Return;

      case StmtKind::Break:
        return Flow::Break;

      case StmtKind::Continue:
        return Flow::Continue;

      case StmtKind::Block:
        for (const minicc::StmtPtr &child : s.stmts) {
            const Flow f = execStmt(*child);
            if (f != Flow::Normal)
                return f;
            if (halted_)
                return Flow::Return;
        }
        return Flow::Normal;

      case StmtKind::Decl:
        for (const minicc::LocalDecl &d : s.decls) {
            if (!d.init)
                continue;
            const uint32_t v = evalExpr(*d.init);
            storeLValue(varLValue(d.sym), v);
        }
        return Flow::Normal;
    }
    die("unhandled statement kind");
}

// -----------------------------------------------------------------------
// Calls and top level
// -----------------------------------------------------------------------

uint32_t
Interp::callFunction(const FuncDecl &f,
                     const std::vector<uint32_t> &args)
{
    if (frames_.size() >= limits_.maxCallDepth)
        die("call depth limit exceeded in '" + f.name + "'");

    Frame frame;
    // Lay out memory-homed variables (aggregates and address-taken
    // scalars) in a fresh stack frame; everything else is a direct
    // slot. Frame memory is zeroed: MiniC programs must initialize
    // before reading, so the fill value is unobservable.
    uint32_t bytes = 0;
    auto place = [&](VarSym *v) {
        if (v->type->isScalar() && !v->addrTaken) {
            frame.slots.emplace(v, 0u);
            return;
        }
        const uint32_t align =
            uint32_t(v->type->align() < 4 ? 4 : v->type->align());
        bytes = (bytes + align - 1) & ~(align - 1);
        frame.addrs.emplace(v, bytes);   // offset for now
        bytes += uint32_t(v->type->size());
    };
    for (VarSym *p : f.paramSyms)
        place(p);
    for (VarSym *l : f.locals)
        place(l);

    bytes = (bytes + 7u) & ~7u;
    if (sp_ < bytes ||
        sp_ - bytes < assem::Layout::stackRegionBase)
        die("stack overflow in '" + f.name + "'");
    const uint32_t old_sp = sp_;
    sp_ -= bytes;
    for (auto &[sym, off] : frame.addrs) {
        off += sp_;
        // Zero the slot so reads of uninitialized aggregate bytes are
        // deterministic.
        for (uint32_t i = 0; i < uint32_t(sym->type->size()); ++i)
            mem_.write8(off + i, 0);
    }

    frames_.push_back(std::move(frame));

    // Bind parameters (already converted by the caller).
    for (size_t i = 0; i < f.paramSyms.size(); ++i) {
        LValue lv;
        VarSym *p = f.paramSyms[i];
        lv.type = p->type;
        auto slot = frames_.back().slots.find(p);
        if (slot != frames_.back().slots.end())
            lv.slot = &slot->second;
        else
            lv.addr = frames_.back().addrs.at(p);
        storeLValue(lv, i < args.size() ? args[i] : 0u);
    }

    returnValue_ = 0;
    execStmt(*f.body);
    const uint32_t result =
        f.retType->isVoid() ? 0u : convert(returnValue_, f.retType);

    frames_.pop_back();
    sp_ = old_sp;
    return result;
}

InterpResult
Interp::run()
{
    InterpResult result;
    try {
        layoutGlobals();
        initGlobals();
        for (const FuncDecl &f : unit_.funcs) {
            if (f.body)
                funcs_.emplace(f.name, &f);
        }
        auto main = funcs_.find("main");
        if (main == funcs_.end())
            die("no main() defined");
        const std::vector<uint32_t> no_args(
            main->second->paramSyms.size(), 0u);
        const uint32_t ret =
            callFunction(*main->second, no_args);
        if (!halted_) {
            // _start passes main's return value to the exit syscall.
            halted_ = true;
            exitCode_ = int(ret);
        }
        result.halted = true;
        result.exitCode = exitCode_;
    } catch (const InterpError &e) {
        result.error = true;
        result.errorText = e.text;
    } catch (const FatalError &e) {
        result.error = true;
        result.errorText = e.what();
    }
    result.output = std::move(output_);
    result.steps = steps_;
    return result;
}

} // namespace

InterpResult
interpret(const minicc::Unit &unit, const std::string &input,
          const InterpLimits &limits)
{
    Interp interp(unit, input, limits);
    return interp.run();
}

} // namespace irep::fuzz
