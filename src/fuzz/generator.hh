/**
 * @file
 * Seeded random MiniC program generator. Produces self-contained,
 * deterministic, memory-safe-by-construction programs exercising
 * everything the grammar in docs/minic.md permits: wrapping int32
 * arithmetic, char narrowing, pointers with provenance, arrays,
 * structs, loops, recursion, short-circuit logic, the ?: operator,
 * casts, sizeof, and the __read/__write/__sbrk intrinsics.
 *
 * Safety discipline (so the reference interpreter and the compiled
 * pipeline are guaranteed to agree on well-defined behaviour):
 *   - every array index is masked to the (power-of-two) array size
 *   - pointers always carry provenance: they point into one known
 *     array and are only dereferenced, differenced, or compared
 *     against pointers into the same array
 *   - raw pointer values never flow into observable results
 *   - every local scalar is initialized at declaration; local
 *     aggregates are stored before they are read
 *   - loops have literal bounds, recursion a decreasing guard
 *   - compound-assignment right-hand sides are side-effect-free (the
 *     load-operate-store order around calls differs between register-
 *     and memory-homed variables, so aliasing there is unspecified)
 *
 * Programs fold every result into a global checksum and print it as
 * hex through __write, then return it from main, so any divergence
 * in any computed value surfaces in the output or the exit status.
 */

#ifndef IREP_FUZZ_GENERATOR_HH
#define IREP_FUZZ_GENERATOR_HH

#include <cstdint>
#include <string>
#include <vector>

namespace irep::fuzz
{

/** Tuning knobs for one generated program. */
struct GenOptions
{
    uint64_t seed = 1;
    int maxStmts = 24;      //!< statement budget for main's body
    int maxHelpers = 5;     //!< helper functions (callable DAG)
    int maxGlobals = 8;
    int maxDepth = 3;       //!< expression nesting depth
};

/**
 * A generated program kept as deletable chunks so the minimizer can
 * remove whole declarations/statement groups and re-render.
 */
struct GenProgram
{
    std::vector<std::string> structs;   //!< struct definitions
    std::vector<std::string> globals;   //!< global declarations
    std::vector<std::string> helpers;   //!< helper function definitions
    std::vector<std::string> mainBody;  //!< brace-wrapped chunks in main
    std::string input;                  //!< byte stream served by __read

    /** Assemble the full translation unit (prologue + chunks). */
    std::string render() const;

    /** Total number of deletable chunks across all sections. */
    size_t chunkCount() const;
};

/** Generate one program. Same options -> identical program. */
GenProgram generateProgram(const GenOptions &options);

} // namespace irep::fuzz

#endif // IREP_FUZZ_GENERATOR_HH
