#include "fuzz/differ.hh"

#include <sstream>

#include "asm/assembler.hh"
#include "minicc/compiler.hh"
#include "sim/machine.hh"
#include "support/logging.hh"

namespace irep::fuzz
{

namespace
{

/** Printable summary of a byte string for mismatch details. */
std::string
quoted(const std::string &bytes, size_t limit = 64)
{
    std::string out = "\"";
    for (size_t i = 0; i < bytes.size() && i < limit; ++i) {
        const unsigned char c = (unsigned char)bytes[i];
        if (c == '\n') {
            out += "\\n";
        } else if (c >= 0x20 && c < 0x7f) {
            out += char(c);
        } else {
            char hex[8];
            std::snprintf(hex, sizeof(hex), "\\x%02x", c);
            out += hex;
        }
    }
    out += "\"";
    if (bytes.size() > limit)
        out += "...";
    return out;
}

} // namespace

const char *
diffStatusName(DiffStatus status)
{
    switch (status) {
      case DiffStatus::Match:
        return "match";
      case DiffStatus::Mismatch:
        return "MISMATCH";
      case DiffStatus::CompileError:
        return "compile-error";
      case DiffStatus::RefError:
        return "ref-error";
      case DiffStatus::SimError:
        return "sim-error";
    }
    return "?";
}

DiffOutcome
runDifferential(const std::string &source, const std::string &input,
                const DiffLimits &limits)
{
    DiffOutcome out;

    // 1. Front half: parse + sema (shared by both engines), codegen,
    //    assemble. Any fault here is a compile error — parse/sema
    //    bugs cannot be caught differentially since both engines
    //    consume the same analyzed AST, but crashes still surface.
    std::unique_ptr<minicc::Unit> unit;
    assem::Program program;
    try {
        unit = minicc::compileToUnit(source);
        program = assem::assemble(minicc::generateAsm(*unit));
    } catch (const std::exception &e) {
        out.status = DiffStatus::CompileError;
        out.detail = e.what();
        return out;
    }

    // 2. Reference interpreter. Its step budget scales with the
    //    simulator's instruction budget: a tree-walk "step" is one AST
    //    node or statement, and expression-heavy code retires fewer
    //    instructions per node than the budget ratio would otherwise
    //    assume (observed ~0.65 steps/instruction), so a fixed default
    //    flags legitimately heavy programs as non-terminating.
    InterpLimits interpLimits = limits.interp;
    if (interpLimits.maxSteps < 4 * limits.maxInstructions)
        interpLimits.maxSteps = 4 * limits.maxInstructions;
    const InterpResult ref = interpret(*unit, input, interpLimits);
    out.refExit = ref.exitCode;
    out.refOutput = ref.output;
    const bool refBudget =
        ref.error && ref.steps > interpLimits.maxSteps;
    if (ref.error && !refBudget) {
        out.status = DiffStatus::RefError;
        out.detail = ref.errorText;
        return out;
    }
    if (refBudget) {
        // Only convict the interpreter if the compiled pipeline can
        // actually finish the program within its own budget; when both
        // engines run out, the program is just too heavy to decide.
        sim::RunResult sim;
        try {
            sim = sim::runToHalt(program, input,
                                 limits.maxInstructions,
                                 limits.exec);
        } catch (const std::exception &e) {
            out.status = DiffStatus::SimError;
            out.detail = e.what();
            return out;
        }
        if (sim.halted) {
            out.status = DiffStatus::RefError;
            out.detail = ref.errorText + " (sim halted after " +
                         std::to_string(sim.instructions) +
                         " instructions)";
        } else {
            out.status = DiffStatus::Match;
            out.detail = "undecided: both engines exceeded their "
                         "budgets";
        }
        return out;
    }

    // 3. Compiled pipeline.
    sim::RunResult sim;
    try {
        sim = sim::runToHalt(program, input, limits.maxInstructions,
                             limits.exec);
    } catch (const std::exception &e) {
        out.status = DiffStatus::SimError;
        out.detail = e.what();
        return out;
    }
    out.simExit = sim.exitCode;
    out.simOutput = sim.output;
    if (!sim.halted) {
        // Convict the pipeline of non-termination only when the
        // interpreter proved the program light: at the observed ~0.65
        // steps/instruction, a trace of maxInstructions/4 steps sits a
        // comfortable 2.5x inside the simulator's budget. A heavier
        // reference trace means the program may simply need more than
        // maxInstructions instructions to finish — undecidable here.
        if (ref.steps >= limits.maxInstructions / 4) {
            out.status = DiffStatus::Match;
            out.detail = "undecided: ref halted after " +
                         std::to_string(ref.steps) +
                         " steps but sim budget exhausted";
            return out;
        }
        out.status = DiffStatus::SimError;
        out.detail = "instruction budget exhausted after " +
                     std::to_string(sim.instructions) +
                     " instructions (ref halted after " +
                     std::to_string(ref.steps) + " steps)";
        return out;
    }

    // 4. Compare observable behaviour.
    if (ref.exitCode != sim.exitCode ||
        ref.output != sim.output) {
        out.status = DiffStatus::Mismatch;
        std::ostringstream os;
        if (ref.exitCode != sim.exitCode) {
            os << "exit: ref " << ref.exitCode << " vs sim "
               << sim.exitCode << "; ";
        }
        if (ref.output != sim.output) {
            os << "output: ref " << quoted(ref.output) << " vs sim "
               << quoted(sim.output);
        }
        out.detail = os.str();
        return out;
    }

    out.status = DiffStatus::Match;
    return out;
}

} // namespace irep::fuzz
