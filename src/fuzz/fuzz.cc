#include "fuzz/fuzz.hh"

#include <filesystem>
#include <fstream>
#include <ostream>

#include "fuzz/minimize.hh"
#include "support/logging.hh"
#include "support/prof.hh"

namespace irep::fuzz
{

namespace
{

/** Detail text with digits removed, so compile errors can be compared
 *  across minimization steps even as line numbers shift. */
std::string
stripDigits(const std::string &text)
{
    std::string out;
    for (char c : text)
        if (c < '0' || c > '9')
            out += c;
    return out;
}

/** Write a minimized repro (source + optional input) to disk. */
std::string
dumpRepro(const FuzzOptions &options, uint64_t seed,
          const GenProgram &program, const DiffOutcome &outcome,
          std::ostream &log)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::create_directories(options.reproDir, ec);
    if (ec) {
        log << "  (cannot create repro dir '" << options.reproDir
            << "': " << ec.message() << ")\n";
        return "";
    }

    const std::string stem =
        options.reproDir + "/repro_seed" + std::to_string(seed);
    const std::string mcPath = stem + ".mc";
    std::ofstream mc(mcPath);
    mc << "// irep fuzz repro — seed " << seed << "\n"
       << "// status: " << diffStatusName(outcome.status) << "\n"
       << "// " << outcome.detail << "\n";
    if (!program.input.empty()) {
        mc << "// input file: repro_seed" << seed << ".in\n";
        std::ofstream in(stem + ".in", std::ios::binary);
        in.write(program.input.data(),
                 std::streamsize(program.input.size()));
    }
    mc << program.render();
    if (!mc) {
        log << "  (failed writing " << mcPath << ")\n";
        return "";
    }
    return mcPath;
}

} // namespace

FuzzReport
runFuzz(const FuzzOptions &options, std::ostream &log)
{
    FuzzReport report;
    prof::Span campaign("campaign", "fuzz");
    DiffLimits limits;
    limits.maxInstructions = options.maxInstructions;
    limits.interp = options.interp;
    limits.exec = options.exec;

    for (int i = 0; i < options.count; ++i) {
        const uint64_t seed = options.seed + uint64_t(i);
        prof::Span span("program", "fuzz");
        span.arg("seed", double(seed));
        GenOptions gen;
        gen.seed = seed;
        gen.maxStmts = options.maxStmts;

        const GenProgram program = generateProgram(gen);
        const DiffOutcome outcome =
            runDifferential(program.render(), program.input, limits);

        ++report.total;
        prof::counterAdd("fuzz/programs", 1);
        prof::counterAdd(outcome.status == DiffStatus::Match
                             ? "fuzz/matches" : "fuzz/failures", 1);
        if (outcome.status == DiffStatus::Match) {
            ++report.matches;
            if (options.logEach) {
                log << "seed " << seed << ": match ("
                    << outcome.refOutput.size() << " output bytes)\n";
            }
            continue;
        }

        log << "seed " << seed << ": "
            << diffStatusName(outcome.status) << " — "
            << outcome.detail << "\n";

        // Minimize while the same failure persists, then dump. For
        // compile errors the message itself (minus line numbers) must
        // survive: otherwise removing a referenced declaration would
        // "reproduce" via an unrelated undeclared-identifier error.
        const DiffStatus want = outcome.status;
        const std::string wantDetail = stripDigits(outcome.detail);
        const GenProgram minimal = minimizeProgram(
            program, [&](const GenProgram &candidate) {
                const DiffOutcome got = runDifferential(
                    candidate.render(), candidate.input, limits);
                if (got.status != want)
                    return false;
                if (want == DiffStatus::CompileError)
                    return stripDigits(got.detail) == wantDetail;
                return true;
            });
        const DiffOutcome finalOutcome = runDifferential(
            minimal.render(), minimal.input, limits);

        FuzzFailure failure;
        failure.seed = seed;
        failure.status = finalOutcome.status;
        failure.detail = finalOutcome.detail;
        failure.reproPath =
            dumpRepro(options, seed, minimal, finalOutcome, log);
        if (!failure.reproPath.empty()) {
            log << "  minimized repro (" << minimal.chunkCount()
                << " chunks): " << failure.reproPath << "\n";
        }
        report.failures.push_back(std::move(failure));
    }

    log << "fuzz: " << report.matches << "/" << report.total
        << " programs match";
    if (!report.failures.empty())
        log << ", " << report.failures.size() << " failure(s)";
    log << "\n";
    campaign.arg("programs", double(report.total));
    campaign.arg("failures", double(report.failures.size()));
    return report;
}

} // namespace irep::fuzz
