/**
 * @file
 * The MiniC reference interpreter: a direct tree-walking evaluator
 * over the analyzed AST that defines the language's ground-truth
 * semantics, independently of the minicc→asm→sim pipeline. The
 * differential fuzzer (src/fuzz/differ.hh) runs both and convicts the
 * compiled path whenever they disagree.
 *
 * Semantics implemented here (the normative set, see docs/minic.md):
 *   - int is two's-complement int32; + - * wrap, there is no UB
 *   - x / 0 == x % 0 == 0; INT_MIN / -1 == INT_MIN, INT_MIN % -1 == 0
 *     (the simulator's DIV behaviour)
 *   - shift counts are taken mod 32; >> is arithmetic
 *   - char is an unsigned byte: every store, assignment, cast,
 *     argument pass and return into a char masks to 0..255
 *   - pointer comparisons are unsigned; arithmetic scales by the
 *     element size and wraps like uint32
 *   - evaluation order is fixed (docs/minic.md "Evaluation order"):
 *     left-to-right operands and arguments, rhs before lhs address in
 *     simple assignment, lhs address first in compound assignment
 *
 * Programs must initialize every variable before reading it and keep
 * memory accesses in bounds of the object they name; the fuzz
 * generator produces only such programs. (Out-of-bounds addresses do
 * not trap — memory is a sparse zero-filled byte space, like the
 * simulator's — but frame addresses differ from compiled code, so a
 * wild program can legitimately diverge.)
 */

#ifndef IREP_FUZZ_INTERP_HH
#define IREP_FUZZ_INTERP_HH

#include <cstdint>
#include <string>

#include "minicc/ast.hh"

namespace irep::fuzz
{

/** Resource bounds for one interpreted run. */
struct InterpLimits
{
    /** Evaluation steps (one per statement/expression node). */
    uint64_t maxSteps = 50'000'000;
    /** Bytes the program may emit through the write syscall. */
    uint64_t maxOutputBytes = 1 << 20;
    /** Nested call depth (host recursion guard). */
    uint32_t maxCallDepth = 5000;
};

/** Outcome of one interpreted run. */
struct InterpResult
{
    bool halted = false;        //!< reached exit (main return / __exit)
    bool error = false;         //!< budget exceeded or runtime fault
    std::string errorText;
    int exitCode = 0;
    std::string output;         //!< bytes written through __write
    uint64_t steps = 0;
};

/**
 * Interpret an analyzed translation unit (minicc::compileToUnit).
 * @p input is the byte stream served by __read. Never throws: faults
 * are reported through InterpResult::error.
 */
InterpResult interpret(const minicc::Unit &unit,
                       const std::string &input,
                       const InterpLimits &limits = {});

} // namespace irep::fuzz

#endif // IREP_FUZZ_INTERP_HH
