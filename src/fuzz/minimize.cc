#include "fuzz/minimize.hh"

#include <vector>

namespace irep::fuzz
{

namespace
{

/** Remove [begin, begin+len) from one section, testing the result. */
bool
tryRemove(GenProgram &program,
          std::vector<std::string> GenProgram::*section,
          size_t begin, size_t len, const FailPredicate &failing)
{
    GenProgram candidate = program;
    auto &chunks = candidate.*section;
    chunks.erase(chunks.begin() + long(begin),
                 chunks.begin() + long(begin + len));
    if (!failing(candidate))
        return false;
    program = std::move(candidate);
    return true;
}

/** Reduce one section to (greedy) 1-minimality. */
bool
reduceSection(GenProgram &program,
              std::vector<std::string> GenProgram::*section,
              const FailPredicate &failing)
{
    bool changed = false;

    // Halves first: big deletions converge fast when most of the
    // program is irrelevant to the failure.
    for (size_t len = (program.*section).size() / 2; len >= 2;
         len /= 2) {
        size_t i = 0;
        while (i + len <= (program.*section).size()) {
            if (tryRemove(program, section, i, len, failing))
                changed = true;
            else
                i += len;
        }
    }

    // Then single chunks, back to front (later chunks tend to depend
    // on earlier ones, so removing from the back succeeds more).
    for (size_t i = (program.*section).size(); i-- > 0;) {
        if (tryRemove(program, section, i, 1, failing))
            changed = true;
    }
    return changed;
}

} // namespace

GenProgram
minimizeProgram(GenProgram program, const FailPredicate &still_failing)
{
    if (!still_failing(program))
        return program;

    bool changed = true;
    while (changed) {
        changed = false;
        changed |= reduceSection(program, &GenProgram::mainBody,
                                 still_failing);
        changed |= reduceSection(program, &GenProgram::helpers,
                                 still_failing);
        changed |= reduceSection(program, &GenProgram::globals,
                                 still_failing);
        changed |= reduceSection(program, &GenProgram::structs,
                                 still_failing);
    }
    return program;
}

} // namespace irep::fuzz
