/**
 * @file
 * Delta-debugging minimizer for generated programs. Works on the
 * chunk lists of a GenProgram (struct defs, globals, helpers, main
 * statement groups): repeatedly re-render the program with chunks
 * removed and keep any removal under which the caller's predicate
 * still reports the failure. Removals that break compilation simply
 * fail the predicate and are rolled back, so the minimizer needs no
 * knowledge of cross-chunk references.
 */

#ifndef IREP_FUZZ_MINIMIZE_HH
#define IREP_FUZZ_MINIMIZE_HH

#include <functional>

#include "fuzz/generator.hh"

namespace irep::fuzz
{

/** Returns true when the candidate still exhibits the failure. */
using FailPredicate = std::function<bool(const GenProgram &)>;

/**
 * Greedy 1-minimal reduction: drop chunks (largest sections first,
 * halves before singles) while @p still_failing holds, to a fixpoint.
 * The returned program always satisfies the predicate (the input
 * program is returned unchanged if it already does not).
 */
GenProgram minimizeProgram(GenProgram program,
                           const FailPredicate &still_failing);

} // namespace irep::fuzz

#endif // IREP_FUZZ_MINIMIZE_HH
