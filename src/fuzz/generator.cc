#include "fuzz/generator.hh"

#include <sstream>

namespace irep::fuzz
{

namespace
{

/** splitmix64: tiny, seedable, and stable across platforms. */
class Rng
{
  public:
    explicit Rng(uint64_t seed)
        : state_(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    uint64_t
    next()
    {
        uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform in [0, n). n must be > 0. */
    uint32_t below(uint32_t n) { return uint32_t(next() % n); }

    /** Uniform in [lo, hi] inclusive. */
    int
    range(int lo, int hi)
    {
        return lo + int(below(uint32_t(hi - lo + 1)));
    }

    bool chance(int percent) { return below(100) < uint32_t(percent); }

  private:
    uint64_t state_;
};

/** What a name in scope denotes (with pointer provenance). */
struct VarInfo
{
    enum Kind
    {
        Int,
        Char,
        IntArr,
        CharArr,
        PtrInt,     //!< int* into a known int array
        PtrChar,    //!< char* into a known char array / string
        StructV,
        StructArr,
        PtrStruct,  //!< struct* at a known struct var / array element
    };

    std::string name;
    Kind kind = Int;
    int count = 0;          //!< element count for arrays (power of two)
    int structIdx = -1;
    std::string prov;       //!< pointers: name of the target object
    int provCount = 0;      //!< pointers into arrays: target's count
    bool readable = true;   //!< false until stored (local aggregates)
    /** Never select as an assignment/incdec target. Set for loop
     *  counters and the recursion guard parameter: overwriting either
     *  would destroy the termination argument (the guard must strictly
     *  decrease; a counter set to INT_MIN loops for ~2^32 steps). */
    bool noWrite = false;
};

struct MemberInfo
{
    std::string name;
    bool isChar = false;
    int arr = 0;    //!< element count when the member is an array
};

struct StructInfo
{
    std::string name;
    std::vector<MemberInfo> members;
};

struct HelperInfo
{
    std::string name;
    bool retChar = false;
    /** Parameter kinds: 0 int, 1 char, 2 int* (>= 8 elems),
     *  3 char* (>= 8 elems). */
    std::vector<int> params;
    bool recursive = false;
};

class Generator
{
  public:
    explicit Generator(const GenOptions &options)
        : opts_(options), rng_(options.seed)
    {}

    GenProgram run();

  private:
    // --- naming --------------------------------------------------------
    std::string
    fresh(const char *stem)
    {
        return std::string(stem) + std::to_string(nameCounter_++);
    }

    // --- scope helpers -------------------------------------------------
    using Scope = std::vector<VarInfo>;

    std::vector<const VarInfo *>
    pick(const Scope &scope, VarInfo::Kind kind,
         bool need_readable) const
    {
        std::vector<const VarInfo *> out;
        for (const VarInfo &v : scope) {
            if (v.kind == kind && (!need_readable || v.readable))
                out.push_back(&v);
        }
        return out;
    }

    const VarInfo *
    any(const Scope &scope, VarInfo::Kind kind, bool need_readable)
    {
        auto c = pick(scope, kind, need_readable);
        if (c.empty())
            return nullptr;
        return c[rng_.below(uint32_t(c.size()))];
    }

    // --- expressions ---------------------------------------------------
    std::string literal();
    std::string intAtom(const Scope &scope, bool pure);
    std::string intExpr(const Scope &scope, int depth, bool pure);
    std::string condExpr(const Scope &scope, int depth, bool pure);
    std::string intLValue(const Scope &scope, bool &found);
    std::string charLValue(const Scope &scope, bool &found);
    std::string callExpr(const Scope &scope, int depth);

    // --- statements ----------------------------------------------------
    void stmt(std::ostream &os, Scope &scope, int &budget,
              int loop_depth, const std::string &ind);
    void declChunk(std::ostream &os, Scope &scope, int &budget,
                   const std::string &ind);
    void loopStmt(std::ostream &os, Scope &scope, int &budget,
                  int loop_depth, const std::string &ind);
    void body(std::ostream &os, Scope &scope, int budget,
              const std::string &ind);

    // --- top level -----------------------------------------------------
    void genStructs(GenProgram &out);
    void genGlobals(GenProgram &out);
    void genHelpers(GenProgram &out);
    void genMain(GenProgram &out);

    GenOptions opts_;
    Rng rng_;
    int nameCounter_ = 0;
    std::vector<StructInfo> structs_;
    Scope globals_;
    std::vector<HelperInfo> helpers_;
    size_t inputBytes_ = 0;     //!< bytes consumed via __read so far
};

// -----------------------------------------------------------------------
// Expressions
// -----------------------------------------------------------------------

std::string
Generator::literal()
{
    switch (rng_.below(8)) {
      case 0:
        return std::to_string(rng_.below(10));
      case 1:
        return std::to_string(rng_.below(256));
      case 2:
        return std::to_string(int32_t(rng_.next()));
      case 3:
        return "0x" + [&] {
            std::ostringstream os;
            os << std::hex << rng_.next() % 0x100000000ull;
            return os.str();
        }();
      case 4:
        return "0x7fffffff";
      case 5:
        return "0x80000000";
      case 6:
        return "(-" + std::to_string(rng_.below(1000) + 1) + ")";
      default:
        return std::to_string(rng_.below(65536));
    }
}

std::string
Generator::intAtom(const Scope &scope, bool pure)
{
    for (int attempt = 0; attempt < 8; ++attempt) {
        switch (rng_.below(10)) {
          case 0:
          case 1:
            return literal();
          case 2: {
            const VarInfo *v = any(scope, VarInfo::Int, true);
            if (v)
                return v->name;
            break;
          }
          case 3: {
            const VarInfo *v = any(scope, VarInfo::Char, true);
            if (v)
                return v->name;
            break;
          }
          case 4:
            return "g_chk";
          case 5: {
            const VarInfo *v = rng_.chance(50)
                ? any(scope, VarInfo::IntArr, true)
                : any(scope, VarInfo::CharArr, true);
            if (v) {
                return v->name + "[" + intAtom(scope, pure) + " & " +
                       std::to_string(v->count - 1) + "]";
            }
            break;
          }
          case 6: {
            const VarInfo *v = rng_.chance(50)
                ? any(scope, VarInfo::PtrInt, true)
                : any(scope, VarInfo::PtrChar, true);
            if (v)
                return "(*" + v->name + ")";
            break;
          }
          case 7: {
            const VarInfo *v = any(scope, VarInfo::StructV, true);
            if (v && !structs_[size_t(v->structIdx)].members.empty()) {
                const auto &ms =
                    structs_[size_t(v->structIdx)].members;
                const MemberInfo &m = ms[rng_.below(
                    uint32_t(ms.size()))];
                if (m.arr) {
                    return v->name + "." + m.name + "[" +
                           intAtom(scope, pure) + " & " +
                           std::to_string(m.arr - 1) + "]";
                }
                return v->name + "." + m.name;
            }
            break;
          }
          case 8: {
            const VarInfo *v = any(scope, VarInfo::PtrStruct, true);
            if (v) {
                const auto &ms =
                    structs_[size_t(v->structIdx)].members;
                const MemberInfo &m = ms[rng_.below(
                    uint32_t(ms.size()))];
                if (m.arr)
                    break;      // keep pointer-member access simple
                return v->name + "->" + m.name;
            }
            break;
          }
          case 9:
            switch (rng_.below(4)) {
              case 0:
                return "sizeof(int)";
              case 1:
                return "sizeof(char)";
              case 2:
                return "sizeof(int *)";
              default:
                if (!structs_.empty()) {
                    return "sizeof(struct " +
                           structs_[rng_.below(uint32_t(
                               structs_.size()))].name + ")";
                }
                return "sizeof(int)";
            }
        }
    }
    return literal();
}

std::string
Generator::callExpr(const Scope &scope, int depth)
{
    if (helpers_.empty())
        return "";
    const HelperInfo &h =
        helpers_[rng_.below(uint32_t(helpers_.size()))];
    std::string call = h.name + "(";
    for (size_t i = 0; i < h.params.size(); ++i) {
        if (i)
            call += ", ";
        switch (h.params[i]) {
          case 0:
            // A recursive helper's first parameter is its decreasing
            // depth guard; keep it a small literal.
            if (h.recursive && i == 0)
                call += std::to_string(rng_.range(0, 6));
            else
                call += intExpr(scope, depth - 1, true);
            break;
          case 1:
            call += intExpr(scope, depth - 1, true);
            break;
          case 2:
          case 3: {
            const VarInfo *arr = any(scope,
                                     h.params[i] == 2
                                         ? VarInfo::IntArr
                                         : VarInfo::CharArr,
                                     true);
            if (arr && arr->count >= 8)
                call += arr->name;
            else
                return "";  // no suitable argument in scope
            break;
          }
        }
    }
    return call + ")";
}

std::string
Generator::intExpr(const Scope &scope, int depth, bool pure)
{
    if (depth <= 0)
        return intAtom(scope, pure);

    switch (rng_.below(14)) {
      case 0:
        return intAtom(scope, pure);
      case 1:
      case 2: {
        static const char *const ops[] = {"+", "-", "*", "/", "%",
                                          "&", "|", "^"};
        return "(" + intExpr(scope, depth - 1, pure) + " " +
               ops[rng_.below(8)] + " " +
               intExpr(scope, depth - 1, pure) + ")";
      }
      case 3: {
        // Literal shift counts stay in 0..31; variable counts are
        // wrapped mod 32 by the machine (sllv/srav) either way.
        const char *op = rng_.chance(50) ? "<<" : ">>";
        if (rng_.chance(50)) {
            return "(" + intExpr(scope, depth - 1, pure) + " " + op +
                   " " + std::to_string(rng_.below(32)) + ")";
        }
        return "(" + intExpr(scope, depth - 1, pure) + " " + op +
               " " + intExpr(scope, depth - 1, pure) + ")";
      }
      case 4: {
        static const char *const ops[] = {"==", "!=", "<",
                                          ">",  "<=", ">="};
        return "(" + intExpr(scope, depth - 1, pure) + " " +
               ops[rng_.below(6)] + " " +
               intExpr(scope, depth - 1, pure) + ")";
      }
      case 5: {
        // The space matters: `-` next to an operand that begins with a
        // negative literal would otherwise paste into a `--` token.
        static const char *const ops[] = {"-", "~", "!"};
        return "(" + std::string(ops[rng_.below(3)]) + " " +
               intExpr(scope, depth - 1, pure) + ")";
      }
      case 6:
        return "(" + condExpr(scope, depth - 1, pure) + " ? " +
               intExpr(scope, depth - 1, pure) + " : " +
               intExpr(scope, depth - 1, pure) + ")";
      case 7: {
        const char *op = rng_.chance(50) ? "&&" : "||";
        return "(" + condExpr(scope, depth - 1, pure) + " " + op +
               " " + condExpr(scope, depth - 1, pure) + ")";
      }
      case 8:
        return "((char)" + intExpr(scope, depth - 1, pure) + ")";
      case 9: {
        // Same-provenance pointer difference / comparison.
        auto ptrs = pick(scope, VarInfo::PtrInt, false);
        auto cptrs = pick(scope, VarInfo::PtrChar, false);
        for (const VarInfo *p : cptrs)
            ptrs.push_back(p);
        for (const VarInfo *p : ptrs) {
            for (const VarInfo *q : ptrs) {
                if (p != q && p->prov == q->prov) {
                    static const char *const ops[] = {"-",  "==",
                                                      "!=", "<"};
                    return "(" + p->name + " " + ops[rng_.below(4)] +
                           " " + q->name + ")";
                }
            }
        }
        return intAtom(scope, pure);
      }
      case 10: {
        if (pure)
            return intAtom(scope, pure);
        const std::string call = callExpr(scope, depth);
        if (!call.empty())
            return call;
        return intAtom(scope, pure);
      }
      case 11: {
        // Assignment as an expression (its value is the bug bait for
        // char narrowing).
        if (pure)
            return intAtom(scope, pure);
        bool found = false;
        const std::string lv = rng_.chance(40)
            ? charLValue(scope, found)
            : intLValue(scope, found);
        if (!found)
            return intAtom(scope, pure);
        return "(" + lv + " = " + intExpr(scope, depth - 1, pure) +
               ")";
      }
      case 12: {
        if (pure)
            return intAtom(scope, pure);
        bool found = false;
        const std::string lv = rng_.chance(40)
            ? charLValue(scope, found)
            : intLValue(scope, found);
        if (!found)
            return intAtom(scope, pure);
        const char *op = rng_.chance(50) ? "++" : "--";
        return rng_.chance(50) ? "(" + lv + op + ")"
                               : "(" + std::string(op) + lv + ")";
      }
      default:
        return "(" + intExpr(scope, depth - 1, pure) + " + " +
               intExpr(scope, depth - 1, pure) + ")";
    }
}

std::string
Generator::condExpr(const Scope &scope, int depth, bool pure)
{
    if (rng_.chance(60)) {
        static const char *const ops[] = {"==", "!=", "<",
                                          ">",  "<=", ">="};
        return intExpr(scope, depth, pure) + " " + ops[rng_.below(6)] +
               " " + intExpr(scope, depth, pure);
    }
    return intExpr(scope, depth, pure);
}

std::string
Generator::intLValue(const Scope &scope, bool &found)
{
    found = true;
    for (int attempt = 0; attempt < 6; ++attempt) {
        switch (rng_.below(4)) {
          case 0: {
            const VarInfo *v = any(scope, VarInfo::Int, false);
            if (v && v->name != "g_chk" && !v->noWrite)
                return v->name;
            break;
          }
          case 1: {
            const VarInfo *v = any(scope, VarInfo::IntArr, true);
            if (v) {
                return v->name + "[" + intAtom(scope, true) + " & " +
                       std::to_string(v->count - 1) + "]";
            }
            break;
          }
          case 2: {
            const VarInfo *v = any(scope, VarInfo::PtrInt, true);
            if (v)
                return "(*" + v->name + ")";
            break;
          }
          case 3: {
            const VarInfo *v = any(scope, VarInfo::StructV, false);
            if (v) {
                for (const MemberInfo &m :
                     structs_[size_t(v->structIdx)].members) {
                    if (!m.isChar && !m.arr)
                        return v->name + "." + m.name;
                }
            }
            break;
          }
        }
    }
    found = false;
    return "";
}

std::string
Generator::charLValue(const Scope &scope, bool &found)
{
    found = true;
    for (int attempt = 0; attempt < 6; ++attempt) {
        switch (rng_.below(3)) {
          case 0: {
            const VarInfo *v = any(scope, VarInfo::Char, false);
            if (v && !v->noWrite)
                return v->name;
            break;
          }
          case 1: {
            const VarInfo *v = any(scope, VarInfo::CharArr, true);
            if (v) {
                return v->name + "[" + intAtom(scope, true) + " & " +
                       std::to_string(v->count - 1) + "]";
            }
            break;
          }
          case 2: {
            const VarInfo *v = any(scope, VarInfo::PtrChar, true);
            if (v)
                return "(*" + v->name + ")";
            break;
          }
        }
    }
    found = false;
    return "";
}

// -----------------------------------------------------------------------
// Statements
// -----------------------------------------------------------------------

/** Declare a fresh variable (with safe initialization) in scope. */
void
Generator::declChunk(std::ostream &os, Scope &scope, int &budget,
                     const std::string &ind)
{
    const int d = opts_.maxDepth;
    switch (rng_.below(9)) {
      case 0: {
        VarInfo v;
        v.name = fresh("v");
        v.kind = VarInfo::Int;
        os << ind << "int " << v.name << " = "
           << intExpr(scope, d - 1, false) << ";\n";
        scope.push_back(v);
        break;
      }
      case 1: {
        VarInfo v;
        v.name = fresh("c");
        v.kind = VarInfo::Char;
        os << ind << "char " << v.name << " = "
           << intExpr(scope, d - 1, false) << ";\n";
        scope.push_back(v);
        break;
      }
      case 2:
      case 3: {
        // Array with an initialization loop (frame memory is reused
        // between calls in the compiled pipeline, so local aggregates
        // must be stored before they are read).
        VarInfo v;
        v.name = fresh("a");
        const bool is_char = rng_.chance(40);
        v.kind = is_char ? VarInfo::CharArr : VarInfo::IntArr;
        v.count = 1 << rng_.range(3, 5);
        v.readable = true;
        const std::string i = fresh("i");
        os << ind << (is_char ? "char " : "int ") << v.name << "["
           << v.count << "];\n";
        os << ind << "for (int " << i << " = 0; " << i << " < "
           << v.count << "; " << i << "++) { " << v.name << "[" << i
           << "] = " << (is_char ? "(char)(" : "(") << i << " * "
           << rng_.range(1, 99) << " + " << rng_.range(0, 999)
           << "); }\n";
        scope.push_back(v);
        break;
      }
      case 4: {
        // Pointer anchored into an array already in scope.
        const bool is_char = rng_.chance(40);
        const VarInfo *arr = any(scope,
                                 is_char ? VarInfo::CharArr
                                         : VarInfo::IntArr,
                                 true);
        if (!arr)
            break;
        VarInfo v;
        v.name = fresh("p");
        v.kind = is_char ? VarInfo::PtrChar : VarInfo::PtrInt;
        v.prov = arr->name;
        v.provCount = arr->count;
        os << ind << (is_char ? "char *" : "int *") << v.name
           << " = &" << arr->name << "[" << intAtom(scope, true)
           << " & " << arr->count - 1 << "];\n";
        scope.push_back(v);
        break;
      }
      case 5: {
        // Local struct: declare, store every member, mark readable.
        if (structs_.empty())
            break;
        const int si = int(rng_.below(uint32_t(structs_.size())));
        const StructInfo &s = structs_[size_t(si)];
        VarInfo v;
        v.name = fresh("s");
        v.kind = VarInfo::StructV;
        v.structIdx = si;
        v.readable = true;
        os << ind << "struct " << s.name << " " << v.name << ";\n";
        for (const MemberInfo &m : s.members) {
            if (m.arr) {
                const std::string i = fresh("i");
                os << ind << "for (int " << i << " = 0; " << i
                   << " < " << m.arr << "; " << i << "++) { "
                   << v.name << "." << m.name << "[" << i << "] = "
                   << i << " + " << rng_.range(0, 99) << "; }\n";
            } else {
                os << ind << v.name << "." << m.name << " = "
                   << intExpr(scope, d - 1, false) << ";\n";
            }
        }
        scope.push_back(v);
        break;
      }
      case 6: {
        // Struct pointer at a readable struct variable.
        const VarInfo *sv = any(scope, VarInfo::StructV, true);
        if (!sv)
            break;
        VarInfo v;
        v.name = fresh("q");
        v.kind = VarInfo::PtrStruct;
        v.structIdx = sv->structIdx;
        v.prov = sv->name;
        os << ind << "struct "
           << structs_[size_t(sv->structIdx)].name << " *" << v.name
           << " = &" << sv->name << ";\n";
        scope.push_back(v);
        break;
      }
      case 7: {
        // Heap chunk from __sbrk (fresh pages read as zero in both
        // the simulator and the interpreter).
        VarInfo v;
        v.name = fresh("hp");
        v.kind = VarInfo::PtrInt;
        v.prov = v.name;    // its own provenance domain
        v.provCount = 16;
        os << ind << "int *" << v.name
           << " = (int *) __sbrk(64);\n";
        const std::string i = fresh("i");
        os << ind << "for (int " << i << " = 0; " << i
           << " < 16; " << i << "++) { " << v.name << "[" << i
           << "] = " << i << " * " << rng_.range(1, 99) << "; }\n";
        // Expose it as a 16-element int array for later statements.
        VarInfo arr = v;
        arr.kind = VarInfo::IntArr;
        arr.count = 16;
        scope.push_back(arr);
        break;
      }
      case 8: {
        // String literal bound to a char*; length 7 so index & 7
        // stays inside the body + NUL.
        VarInfo v;
        v.name = fresh("str");
        v.kind = VarInfo::CharArr;  // indexable like an array
        v.count = 8;
        static const char *const alphabet =
            "abcdefghijklmnopqrstuvwxyz";
        std::string lit;
        for (int i = 0; i < 7; ++i)
            lit += alphabet[rng_.below(26)];
        os << ind << "char *" << v.name << " = \"" << lit
           << "\";\n";
        scope.push_back(v);
        break;
      }
    }
    --budget;
}

void
Generator::loopStmt(std::ostream &os, Scope &scope, int &budget,
                    int loop_depth, const std::string &ind)
{
    const int kind = rng_.below(3);
    const int bound = rng_.range(1, 10);
    const std::string inner_ind = ind + "    ";

    // The loop body runs with a private scope copy so its
    // declarations do not leak out of the braces.
    Scope inner = scope;
    std::ostringstream bodyText;
    int inner_budget = budget > 4 ? 4 : budget;
    budget -= inner_budget + 1;
    if (kind == 0) {
        const std::string i = fresh("i");
        VarInfo vi;
        vi.name = i;
        vi.kind = VarInfo::Int;
        vi.noWrite = true;
        inner.push_back(vi);
        while (inner_budget > 0)
            stmt(bodyText, inner, inner_budget, loop_depth + 1,
                 inner_ind);
        os << ind << "for (int " << i << " = 0; " << i << " < "
           << bound << "; " << i << "++) {\n"
           << bodyText.str() << ind << "}\n";
        return;
    }

    // while / do-while drive an explicit counter; `continue` must not
    // be generated here (it would skip the decrement), which stmt()
    // guarantees by only emitting continue under a for loop. Pass
    // loop_depth 0 inside so neither break nor continue is emitted —
    // break is fine semantically but keeping the counter pattern
    // canonical keeps termination trivially provable.
    const std::string w = fresh("w");
    while (inner_budget > 0)
        stmt(bodyText, inner, inner_budget, 0, inner_ind);
    if (kind == 1) {
        os << ind << "int " << w << " = " << bound << ";\n"
           << ind << "while (" << w << " > 0) {\n"
           << bodyText.str() << inner_ind << w << " = " << w
           << " - 1;\n"
           << ind << "}\n";
    } else {
        os << ind << "int " << w << " = " << bound << ";\n"
           << ind << "do {\n"
           << bodyText.str() << inner_ind << w << " = " << w
           << " - 1;\n"
           << ind << "} while (" << w << " > 0);\n";
    }
}

void
Generator::stmt(std::ostream &os, Scope &scope, int &budget,
                int loop_depth, const std::string &ind)
{
    if (budget <= 0)
        return;
    const int d = opts_.maxDepth;

    switch (rng_.below(12)) {
      case 0:
      case 1:
        os << ind << "mix(" << intExpr(scope, d, false) << ");\n";
        --budget;
        return;
      case 2: {
        bool found = false;
        const std::string lv = rng_.chance(35)
            ? charLValue(scope, found)
            : intLValue(scope, found);
        if (!found)
            break;
        os << ind << lv << " = " << intExpr(scope, d, false)
           << ";\n";
        --budget;
        return;
      }
      case 3: {
        // Compound assignment: rhs must be side-effect-free (see
        // generator.hh).
        bool found = false;
        const std::string lv = rng_.chance(35)
            ? charLValue(scope, found)
            : intLValue(scope, found);
        if (!found)
            break;
        static const char *const ops[] = {"+=", "-=", "*=", "/=",
                                          "%=", "&=", "|=", "^=",
                                          "<<=", ">>="};
        os << ind << lv << " " << ops[rng_.below(10)] << " "
           << intExpr(scope, d - 1, true) << ";\n";
        --budget;
        return;
      }
      case 4: {
        bool found = false;
        const std::string lv = rng_.chance(50)
            ? charLValue(scope, found)
            : intLValue(scope, found);
        if (!found)
            break;
        os << ind << lv << (rng_.chance(50) ? "++" : "--") << ";\n";
        --budget;
        return;
      }
      case 5: {
        // if / if-else
        std::ostringstream thenText, elseText;
        int half = budget > 3 ? 3 : budget;
        budget -= half + 1;
        Scope inner = scope;
        while (half > 0)
            stmt(thenText, inner, half, loop_depth, ind + "    ");
        os << ind << "if (" << condExpr(scope, d - 1, false)
           << ") {\n"
           << thenText.str() << ind << "}";
        if (rng_.chance(50) && budget > 0) {
            int other = budget > 2 ? 2 : budget;
            budget -= other;
            Scope inner2 = scope;
            while (other > 0)
                stmt(elseText, inner2, other, loop_depth,
                     ind + "    ");
            os << " else {\n" << elseText.str() << ind << "}";
        }
        os << "\n";
        return;
      }
      case 6:
        loopStmt(os, scope, budget, loop_depth, ind);
        return;
      case 7:
        if (loop_depth > 0 && rng_.chance(60)) {
            os << ind << "if (" << condExpr(scope, d - 1, true)
               << ") { "
               << (rng_.chance(50) ? "break" : "continue")
               << "; }\n";
            --budget;
            return;
        }
        break;
      case 8:
      case 9:
        declChunk(os, scope, budget, ind);
        return;
      case 10: {
        const std::string call = callExpr(scope, d);
        if (call.empty())
            break;
        os << ind << "mix(" << call << ");\n";
        --budget;
        return;
      }
      case 11: {
        // __read into a pre-zeroed buffer: the tail past the bytes
        // actually delivered reads as zero on both sides.
        VarInfo v;
        v.name = fresh("rb");
        v.kind = VarInfo::CharArr;
        v.count = 16;
        const std::string i = fresh("i");
        const std::string n = fresh("n");
        os << ind << "char " << v.name << "[16];\n"
           << ind << "for (int " << i << " = 0; " << i
           << " < 16; " << i << "++) { " << v.name << "[" << i
           << "] = 0; }\n"
           << ind << "int " << n << " = __read(" << v.name
           << ", 16);\n"
           << ind << "mix(" << n << ");\n";
        scope.push_back(v);
        VarInfo nv;
        nv.name = n;
        nv.kind = VarInfo::Int;
        scope.push_back(nv);
        inputBytes_ += 16;
        budget -= 2;
        return;
      }
    }

    // Fallback so the budget always drains.
    os << ind << "mix(" << intExpr(scope, d - 1, false) << ");\n";
    --budget;
}

void
Generator::body(std::ostream &os, Scope &scope, int budget,
                const std::string &ind)
{
    while (budget > 0)
        stmt(os, scope, budget, 0, ind);
}

// -----------------------------------------------------------------------
// Top level
// -----------------------------------------------------------------------

void
Generator::genStructs(GenProgram &out)
{
    const int n = rng_.range(0, 2);
    for (int s = 0; s < n; ++s) {
        StructInfo info;
        info.name = fresh("S");
        std::ostringstream os;
        os << "struct " << info.name << " {\n";
        const int members = rng_.range(1, 4);
        for (int m = 0; m < members; ++m) {
            MemberInfo mi;
            mi.name = fresh("m");
            switch (rng_.below(4)) {
              case 0:
                mi.isChar = true;
                os << "    char " << mi.name << ";\n";
                break;
              case 1:
                mi.arr = 4;
                os << "    int " << mi.name << "[4];\n";
                break;
              default:
                os << "    int " << mi.name << ";\n";
            }
            info.members.push_back(mi);
        }
        os << "};\n";
        structs_.push_back(info);
        out.structs.push_back(os.str());
    }
}

void
Generator::genGlobals(GenProgram &out)
{
    const int n = rng_.range(2, opts_.maxGlobals);
    for (int g = 0; g < n; ++g) {
        VarInfo v;
        std::ostringstream os;
        switch (rng_.below(8)) {
          case 0:
          case 1:
            v.name = fresh("g");
            v.kind = VarInfo::Int;
            if (rng_.chance(70)) {
                os << "int " << v.name << " = "
                   << int32_t(rng_.next()) << ";\n";
            } else {
                os << "int " << v.name << ";\n";
            }
            break;
          case 2:
            v.name = fresh("gc");
            v.kind = VarInfo::Char;
            os << "char " << v.name << " = " << rng_.below(256)
               << ";\n";
            break;
          case 3:
          case 4: {
            v.name = fresh("ga");
            v.kind = VarInfo::IntArr;
            v.count = 1 << rng_.range(3, 4);
            os << "int " << v.name << "[" << v.count << "]";
            if (rng_.chance(60)) {
                os << " = {";
                for (int i = 0; i < v.count; ++i) {
                    if (i)
                        os << ", ";
                    os << int32_t(rng_.next() % 100000);
                }
                os << "}";
            }
            os << ";\n";
            break;
          }
          case 5: {
            // char array with a string initializer, padded with NULs
            // to the declared (power-of-two) size.
            v.name = fresh("gs");
            v.kind = VarInfo::CharArr;
            v.count = 16;
            std::string lit;
            const int len = rng_.range(1, 15);
            for (int i = 0; i < len; ++i)
                lit += char('a' + rng_.below(26));
            os << "char " << v.name << "[16] = \"" << lit
               << "\";\n";
            break;
          }
          case 6: {
            // char* at an interned string literal (length 7 + NUL
            // = 8 bytes, so & 7 indexing stays in bounds).
            v.name = fresh("gp");
            v.kind = VarInfo::CharArr;
            v.count = 8;
            std::string lit;
            for (int i = 0; i < 7; ++i)
                lit += char('a' + rng_.below(26));
            os << "char *" << v.name << " = \"" << lit << "\";\n";
            break;
          }
          case 7: {
            // Global struct: uninitialized, so it reads as zeros on
            // both sides (the data segment is zero-filled).
            if (structs_.empty()) {
                v.name = fresh("g");
                v.kind = VarInfo::Int;
                os << "int " << v.name << " = 1;\n";
                break;
            }
            const int si =
                int(rng_.below(uint32_t(structs_.size())));
            v.name = fresh("gt");
            v.kind = VarInfo::StructV;
            v.structIdx = si;
            os << "struct " << structs_[size_t(si)].name << " "
               << v.name << ";\n";
            break;
          }
        }
        globals_.push_back(v);
        out.globals.push_back(os.str());
    }
}

void
Generator::genHelpers(GenProgram &out)
{
    const int n = rng_.range(1, opts_.maxHelpers);
    for (int h = 0; h < n; ++h) {
        HelperInfo info;
        info.name = fresh("h");
        // First helper of each run is recursion bait; the rest favor
        // the char-narrowing paths in the calling convention.
        info.recursive = (h == 0);
        info.retChar = !info.recursive && rng_.chance(30);
        if (info.recursive) {
            info.params = {0, 0};
        } else {
            const int nparams = rng_.range(1, 3);
            for (int p = 0; p < nparams; ++p)
                info.params.push_back(int(rng_.below(4)));
        }

        // Body scope: params + globals; helpers may call only
        // earlier helpers (a DAG). A recursive helper never sees
        // itself in callExpr — its only self-call is the final
        // `return hN(guard - 1, ...)`, so the guard strictly
        // decreases and recursion is bounded.
        Scope scope = globals_;
        std::ostringstream os;
        os << (info.retChar ? "char " : "int ") << info.name << "(";
        static const char *const ptypes[] = {"int ", "char ",
                                             "int *", "char *"};
        std::vector<std::string> pnames;
        for (size_t p = 0; p < info.params.size(); ++p) {
            if (p)
                os << ", ";
            const std::string pn = fresh("x");
            pnames.push_back(pn);
            os << ptypes[info.params[p]] << pn;
            VarInfo v;
            v.name = pn;
            if (info.recursive && p == 0)
                v.noWrite = true;  // the guard must only decrease
            switch (info.params[p]) {
              case 0:
                v.kind = VarInfo::Int;
                break;
              case 1:
                v.kind = VarInfo::Char;
                break;
              case 2:
                // Callers only pass arrays of >= 8 elements.
                v.kind = VarInfo::IntArr;
                v.count = 8;
                break;
              case 3:
                v.kind = VarInfo::CharArr;
                v.count = 8;
                break;
            }
            scope.push_back(v);
        }
        os << ") {\n";

        if (info.recursive) {
            os << "    if (" << pnames[0] << " <= 0) { return "
               << pnames[1] << "; }\n";
        }

        std::ostringstream bodyText;
        body(bodyText, scope, rng_.range(2, 5), "    ");
        os << bodyText.str();
        if (info.recursive) {
            os << "    return " << info.name << "(" << pnames[0]
               << " - 1, " << intExpr(scope, 1, false) << ");\n";
        } else {
            os << "    return " << intExpr(scope, opts_.maxDepth, false)
               << ";\n";
        }
        os << "}\n";

        helpers_.push_back(info);
        out.helpers.push_back(os.str());
    }
}

void
Generator::genMain(GenProgram &out)
{
    int budget = opts_.maxStmts;
    while (budget > 0) {
        // Each chunk is brace-wrapped: its locals are private, so the
        // minimizer can delete chunks independently.
        Scope scope = globals_;
        std::ostringstream os;
        int chunk = rng_.range(2, 6);
        if (chunk > budget)
            chunk = budget;
        budget -= chunk;
        os << "    {\n";
        std::ostringstream inner;
        while (chunk > 0)
            stmt(inner, scope, chunk, 0, "        ");
        os << inner.str() << "    }\n";
        out.mainBody.push_back(os.str());
    }
}

} // namespace

std::string
GenProgram::render() const
{
    std::string src;
    for (const std::string &s : structs)
        src += s;
    src += "int g_chk = 0;\n";
    for (const std::string &g : globals)
        src += g;
    src += "void mix(int v) { g_chk = (g_chk * 33) ^ v; }\n";
    for (const std::string &h : helpers)
        src += h;
    src +=
        "void emit_chk(void) {\n"
        "    char buf[9];\n"
        "    int i = 0;\n"
        "    while (i < 8) {\n"
        "        int d = (g_chk >> ((7 - i) * 4)) & 15;\n"
        "        if (d < 10) { buf[i] = 48 + d; }\n"
        "        else { buf[i] = 87 + d; }\n"
        "        i = i + 1;\n"
        "    }\n"
        "    buf[8] = 10;\n"
        "    __write(buf, 9);\n"
        "}\n";
    src += "int main(void) {\n";
    for (const std::string &c : mainBody)
        src += c;
    src +=
        "    emit_chk();\n"
        "    return g_chk & 255;\n"
        "}\n";
    return src;
}

size_t
GenProgram::chunkCount() const
{
    return structs.size() + globals.size() + helpers.size() +
           mainBody.size();
}

GenProgram
generateProgram(const GenOptions &options)
{
    Generator gen(options);
    return gen.run();
}

namespace
{

GenProgram
Generator::run()
{
    GenProgram out;
    genStructs(out);
    genGlobals(out);
    genHelpers(out);
    genMain(out);

    // Input bytes for however many __read(.., 16) calls were
    // generated; printable so repro .in files stay readable. Leave
    // some reads short (or empty) to exercise partial reads.
    const size_t want =
        inputBytes_ ? rng_.below(uint32_t(inputBytes_ + 1)) : 0;
    for (size_t i = 0; i < want; ++i)
        out.input += char(' ' + rng_.below(95));
    return out;
}

} // namespace

} // namespace irep::fuzz
