/**
 * @file
 * The fuzz campaign driver behind `irep fuzz`: generate N seeded
 * programs, run each differentially (reference interpreter vs the
 * compiled minicc->asm->sim pipeline), and for every failure minimize
 * the program and dump a standalone `.mc` repro (plus a `.in` input
 * file when the program consumes input).
 */

#ifndef IREP_FUZZ_FUZZ_HH
#define IREP_FUZZ_FUZZ_HH

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "fuzz/differ.hh"

namespace irep::fuzz
{

/** Campaign configuration (see `irep fuzz --help`). */
struct FuzzOptions
{
    uint64_t seed = 1;          //!< first seed; program i uses seed+i
    int count = 100;            //!< number of programs
    int maxStmts = 24;          //!< statement budget per program
    std::string reproDir = "fuzz-repros";   //!< where repros go
    uint64_t maxInstructions = 100'000'000;
    InterpLimits interp;        //!< reference-interpreter bounds
    /** Simulator execution backend (IREP_EXEC default when unset). */
    std::optional<sim::ExecBackend> exec;
    bool logEach = false;       //!< one line per program
};

/** One failed program (after minimization). */
struct FuzzFailure
{
    uint64_t seed = 0;
    DiffStatus status = DiffStatus::Mismatch;
    std::string detail;
    std::string reproPath;      //!< empty when the dump failed
};

struct FuzzReport
{
    int total = 0;
    int matches = 0;
    std::vector<FuzzFailure> failures;

    bool ok() const { return matches == total; }
};

/**
 * Run one campaign, logging progress and failures to @p log.
 * Deterministic for fixed options.
 */
FuzzReport runFuzz(const FuzzOptions &options, std::ostream &log);

} // namespace irep::fuzz

#endif // IREP_FUZZ_FUZZ_HH
