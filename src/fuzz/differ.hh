/**
 * @file
 * The differential driver: run one MiniC source text through the
 * reference interpreter and through the full compiled pipeline
 * (minicc -> asm -> sim), and compare the observable behaviour —
 * output bytes and exit status. A mismatch convicts the pipeline
 * (codegen, assembler, or simulator); crashes in either engine are
 * classified separately.
 */

#ifndef IREP_FUZZ_DIFFER_HH
#define IREP_FUZZ_DIFFER_HH

#include <cstdint>
#include <optional>
#include <string>

#include "fuzz/interp.hh"
#include "sim/machine.hh"

namespace irep::fuzz
{

/** Resource bounds for one differential run. */
struct DiffLimits
{
    uint64_t maxInstructions = 100'000'000;     //!< simulator budget
    InterpLimits interp;
    /** Simulator execution backend (IREP_EXEC default when unset). */
    std::optional<sim::ExecBackend> exec;
};

enum class DiffStatus : uint8_t
{
    Match,          //!< both ran to completion with equal behaviour
    Mismatch,       //!< both completed but disagree — a pipeline bug
    CompileError,   //!< minicc/assembler rejected or crashed
    RefError,       //!< interpreter fault or budget exhausted
    SimError,       //!< simulator fault or budget exhausted
};

const char *diffStatusName(DiffStatus status);

/** Everything observed from one differential run. */
struct DiffOutcome
{
    DiffStatus status = DiffStatus::Match;
    std::string detail;         //!< human-readable description
    int refExit = 0;
    int simExit = 0;
    std::string refOutput;
    std::string simOutput;
};

/**
 * Compile @p source, interpret it, simulate it, compare. @p input is
 * the byte stream served by __read to both engines. Never throws.
 */
DiffOutcome runDifferential(const std::string &source,
                            const std::string &input,
                            const DiffLimits &limits = {});

} // namespace irep::fuzz

#endif // IREP_FUZZ_DIFFER_HH
