/**
 * @file
 * MIPS o32 register numbering and conventional names. The local
 * analysis (prologue/epilogue and argument tracking) keys off these
 * conventions, exactly as the paper's analysis keys off the MIPS ABI.
 */

#ifndef IREP_ISA_REGISTERS_HH
#define IREP_ISA_REGISTERS_HH

#include <cstdint>
#include <string_view>

namespace irep::isa
{

/** Number of integer architectural registers. */
constexpr unsigned numIntRegs = 32;

/** Conventional o32 register numbers. */
enum Reg : uint8_t
{
    regZero = 0,    //!< hardwired zero
    regAT = 1,      //!< assembler temporary
    regV0 = 2,      //!< return value 0
    regV1 = 3,      //!< return value 1
    regA0 = 4,      //!< argument 0
    regA1 = 5,      //!< argument 1
    regA2 = 6,      //!< argument 2
    regA3 = 7,      //!< argument 3
    regT0 = 8,      //!< caller-saved temporaries t0..t7 = 8..15
    regT7 = 15,
    regS0 = 16,     //!< callee-saved s0..s7 = 16..23
    regS7 = 23,
    regT8 = 24,
    regT9 = 25,
    regK0 = 26,     //!< kernel reserved
    regK1 = 27,
    regGP = 28,     //!< global pointer (data-segment base)
    regSP = 29,     //!< stack pointer
    regFP = 30,     //!< frame pointer (a.k.a. s8)
    regRA = 31,     //!< return address
};

/** True for the callee-saved registers ($s0..$s7, $fp). */
constexpr bool
isCalleeSaved(unsigned reg)
{
    return (reg >= regS0 && reg <= regS7) || reg == regFP;
}

/** True for the argument-passing registers ($a0..$a3). */
constexpr bool
isArgReg(unsigned reg)
{
    return reg >= regA0 && reg <= regA3;
}

/** Conventional name ("$sp", "$a0", ...) of a register number. */
std::string_view regName(unsigned reg);

/**
 * Parse a register name ("$sp", "$4", "sp", ...).
 * @return the register number, or -1 if the name is not recognized.
 */
int parseRegName(std::string_view name);

} // namespace irep::isa

#endif // IREP_ISA_REGISTERS_HH
