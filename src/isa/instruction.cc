#include "isa/instruction.hh"

#include <array>
#include <cstdio>

#include "isa/registers.hh"
#include "support/bits.hh"
#include "support/logging.hh"

namespace irep::isa
{

namespace
{

/** Encoding class: how an op maps onto the binary format. */
enum class Enc : uint8_t
{
    RFunct,     //!< opcode 0, identified by funct
    RegImm,     //!< opcode 1, identified by rt
    Primary,    //!< identified by primary opcode
};

struct EncInfo
{
    Enc enc;
    uint8_t code;   //!< funct, rt-code, or primary opcode
};

struct OpRow
{
    OpInfo info;
    EncInfo encoding;
};

constexpr OpRow
row(std::string_view mnem, Format fmt, Enc enc, uint8_t code,
    bool reads_rs, bool reads_rt, bool writes_rd, bool writes_rt,
    bool is_load = false, bool is_store = false, bool is_branch = false,
    bool is_jump = false, bool is_call = false, bool writes_hilo = false,
    bool reads_hi = false, bool reads_lo = false,
    bool unsigned_imm = false, uint8_t mem_bytes = 0)
{
    return OpRow{
        OpInfo{mnem, fmt, reads_rs, reads_rt, writes_rd, writes_rt,
               is_load, is_store, is_branch, is_jump, is_call,
               writes_hilo, reads_hi, reads_lo, unsigned_imm, mem_bytes},
        EncInfo{enc, code},
    };
}

// Indexed by Op. Keep in exact declaration order of enum class Op.
constexpr std::array<OpRow, size_t(Op::NUM_OPS)> opTable = {
    // mnem      fmt        enc           code  rs     rt     wrd    wrt
    row("sll",   Format::R, Enc::RFunct,  0x00, false, true,  true,  false),
    row("srl",   Format::R, Enc::RFunct,  0x02, false, true,  true,  false),
    row("sra",   Format::R, Enc::RFunct,  0x03, false, true,  true,  false),
    row("sllv",  Format::R, Enc::RFunct,  0x04, true,  true,  true,  false),
    row("srlv",  Format::R, Enc::RFunct,  0x06, true,  true,  true,  false),
    row("srav",  Format::R, Enc::RFunct,  0x07, true,  true,  true,  false),
    row("jr",    Format::R, Enc::RFunct,  0x08, true,  false, false, false,
        false, false, false, true),
    row("jalr",  Format::R, Enc::RFunct,  0x09, true,  false, true,  false,
        false, false, false, true, true),
    row("syscall", Format::R, Enc::RFunct, 0x0c, false, false, false, false),
    row("break", Format::R, Enc::RFunct,  0x0d, false, false, false, false),
    row("mfhi",  Format::R, Enc::RFunct,  0x10, false, false, true,  false,
        false, false, false, false, false, false, true, false),
    row("mthi",  Format::R, Enc::RFunct,  0x11, true,  false, false, false,
        false, false, false, false, false, true),
    row("mflo",  Format::R, Enc::RFunct,  0x12, false, false, true,  false,
        false, false, false, false, false, false, false, true),
    row("mtlo",  Format::R, Enc::RFunct,  0x13, true,  false, false, false,
        false, false, false, false, false, true),
    row("mult",  Format::R, Enc::RFunct,  0x18, true,  true,  false, false,
        false, false, false, false, false, true),
    row("multu", Format::R, Enc::RFunct,  0x19, true,  true,  false, false,
        false, false, false, false, false, true),
    row("div",   Format::R, Enc::RFunct,  0x1a, true,  true,  false, false,
        false, false, false, false, false, true),
    row("divu",  Format::R, Enc::RFunct,  0x1b, true,  true,  false, false,
        false, false, false, false, false, true),
    row("add",   Format::R, Enc::RFunct,  0x20, true,  true,  true,  false),
    row("addu",  Format::R, Enc::RFunct,  0x21, true,  true,  true,  false),
    row("sub",   Format::R, Enc::RFunct,  0x22, true,  true,  true,  false),
    row("subu",  Format::R, Enc::RFunct,  0x23, true,  true,  true,  false),
    row("and",   Format::R, Enc::RFunct,  0x24, true,  true,  true,  false),
    row("or",    Format::R, Enc::RFunct,  0x25, true,  true,  true,  false),
    row("xor",   Format::R, Enc::RFunct,  0x26, true,  true,  true,  false),
    row("nor",   Format::R, Enc::RFunct,  0x27, true,  true,  true,  false),
    row("slt",   Format::R, Enc::RFunct,  0x2a, true,  true,  true,  false),
    row("sltu",  Format::R, Enc::RFunct,  0x2b, true,  true,  true,  false),
    row("bltz",  Format::I, Enc::RegImm,  0x00, true,  false, false, false,
        false, false, true),
    row("bgez",  Format::I, Enc::RegImm,  0x01, true,  false, false, false,
        false, false, true),
    row("j",     Format::J, Enc::Primary, 0x02, false, false, false, false,
        false, false, false, true),
    row("jal",   Format::J, Enc::Primary, 0x03, false, false, false, false,
        false, false, false, true, true),
    row("beq",   Format::I, Enc::Primary, 0x04, true,  true,  false, false,
        false, false, true),
    row("bne",   Format::I, Enc::Primary, 0x05, true,  true,  false, false,
        false, false, true),
    row("blez",  Format::I, Enc::Primary, 0x06, true,  false, false, false,
        false, false, true),
    row("bgtz",  Format::I, Enc::Primary, 0x07, true,  false, false, false,
        false, false, true),
    row("addi",  Format::I, Enc::Primary, 0x08, true,  false, false, true),
    row("addiu", Format::I, Enc::Primary, 0x09, true,  false, false, true),
    row("slti",  Format::I, Enc::Primary, 0x0a, true,  false, false, true),
    row("sltiu", Format::I, Enc::Primary, 0x0b, true,  false, false, true),
    row("andi",  Format::I, Enc::Primary, 0x0c, true,  false, false, true,
        false, false, false, false, false, false, false, false, true),
    row("ori",   Format::I, Enc::Primary, 0x0d, true,  false, false, true,
        false, false, false, false, false, false, false, false, true),
    row("xori",  Format::I, Enc::Primary, 0x0e, true,  false, false, true,
        false, false, false, false, false, false, false, false, true),
    row("lui",   Format::I, Enc::Primary, 0x0f, false, false, false, true,
        false, false, false, false, false, false, false, false, true),
    row("lb",    Format::I, Enc::Primary, 0x20, true,  false, false, true,
        true,  false, false, false, false, false, false, false, false, 1),
    row("lh",    Format::I, Enc::Primary, 0x21, true,  false, false, true,
        true,  false, false, false, false, false, false, false, false, 2),
    row("lw",    Format::I, Enc::Primary, 0x23, true,  false, false, true,
        true,  false, false, false, false, false, false, false, false, 4),
    row("lbu",   Format::I, Enc::Primary, 0x24, true,  false, false, true,
        true,  false, false, false, false, false, false, false, false, 1),
    row("lhu",   Format::I, Enc::Primary, 0x25, true,  false, false, true,
        true,  false, false, false, false, false, false, false, false, 2),
    row("sb",    Format::I, Enc::Primary, 0x28, true,  true,  false, false,
        false, true,  false, false, false, false, false, false, false, 1),
    row("sh",    Format::I, Enc::Primary, 0x29, true,  true,  false, false,
        false, true,  false, false, false, false, false, false, false, 2),
    row("sw",    Format::I, Enc::Primary, 0x2b, true,  true,  false, false,
        false, true,  false, false, false, false, false, false, false, 4),
};

const EncInfo &
encInfo(Op op)
{
    return opTable[size_t(op)].encoding;
}

} // namespace

const OpInfo &
opInfo(Op op)
{
    panicIf(op >= Op::NUM_OPS, "opInfo on invalid op");
    return opTable[size_t(op)].info;
}

bool
endsBasicBlock(Op op)
{
    if (op >= Op::NUM_OPS)
        return true;
    const OpInfo &info = opInfo(op);
    return info.isBranch || info.isJump || op == Op::SYSCALL ||
           op == Op::BREAK;
}

Op
opFromMnemonic(std::string_view mnemonic)
{
    for (size_t i = 0; i < opTable.size(); ++i) {
        if (opTable[i].info.mnemonic == mnemonic)
            return Op(i);
    }
    return Op::INVALID;
}

int
Instruction::destReg() const
{
    const OpInfo &info = opInfo(op);
    if (info.writesRd)
        return rd;
    if (info.writesRt)
        return rt;
    if (op == Op::JAL)
        return regRA;
    return -1;
}

int
Instruction::numSrcRegs() const
{
    const OpInfo &info = opInfo(op);
    return (info.readsRs ? 1 : 0) + (info.readsRt ? 1 : 0);
}

int
Instruction::srcReg(int i) const
{
    const OpInfo &info = opInfo(op);
    if (info.readsRs)
        return i == 0 ? rs : rt;
    return rt;
}

Instruction
decode(uint32_t word)
{
    Instruction inst;
    const uint32_t opcode = bits(word, 31, 26);
    inst.rs = uint8_t(bits(word, 25, 21));
    inst.rt = uint8_t(bits(word, 20, 16));
    inst.rd = uint8_t(bits(word, 15, 11));
    inst.shamt = uint8_t(bits(word, 10, 6));
    inst.target = bits(word, 25, 0);

    Op found = Op::INVALID;
    if (opcode == 0x00) {
        const uint32_t funct = bits(word, 5, 0);
        for (size_t i = 0; i < opTable.size(); ++i) {
            const auto &e = opTable[i].encoding;
            if (e.enc == Enc::RFunct && e.code == funct) {
                found = Op(i);
                break;
            }
        }
    } else if (opcode == 0x01) {
        for (size_t i = 0; i < opTable.size(); ++i) {
            const auto &e = opTable[i].encoding;
            if (e.enc == Enc::RegImm && e.code == inst.rt) {
                found = Op(i);
                break;
            }
        }
    } else {
        for (size_t i = 0; i < opTable.size(); ++i) {
            const auto &e = opTable[i].encoding;
            if (e.enc == Enc::Primary && e.code == opcode) {
                found = Op(i);
                break;
            }
        }
    }
    inst.op = found;
    if (found == Op::INVALID)
        return inst;

    const OpInfo &info = opInfo(found);
    if (info.format == Format::I) {
        const uint32_t raw = bits(word, 15, 0);
        inst.imm = info.unsignedImm ? int32_t(raw) : signExtend(raw, 16);
    }
    return inst;
}

uint32_t
encode(const Instruction &inst)
{
    panicIf(!inst.valid(), "encode of invalid instruction");
    const EncInfo &e = encInfo(inst.op);
    const OpInfo &info = opInfo(inst.op);
    uint32_t word = 0;

    switch (e.enc) {
      case Enc::RFunct:
        word = insertBits(word, 31, 26, 0x00);
        word = insertBits(word, 25, 21, inst.rs);
        word = insertBits(word, 20, 16, inst.rt);
        word = insertBits(word, 15, 11, inst.rd);
        word = insertBits(word, 10, 6, inst.shamt);
        word = insertBits(word, 5, 0, e.code);
        break;
      case Enc::RegImm:
        word = insertBits(word, 31, 26, 0x01);
        word = insertBits(word, 25, 21, inst.rs);
        word = insertBits(word, 20, 16, e.code);
        word = insertBits(word, 15, 0, uint32_t(inst.imm));
        break;
      case Enc::Primary:
        word = insertBits(word, 31, 26, e.code);
        if (info.format == Format::J) {
            word = insertBits(word, 25, 0, inst.target);
        } else {
            word = insertBits(word, 25, 21, inst.rs);
            word = insertBits(word, 20, 16, inst.rt);
            word = insertBits(word, 15, 0, uint32_t(inst.imm));
        }
        break;
    }
    return word;
}

std::string
disassemble(const Instruction &inst, uint32_t pc)
{
    if (!inst.valid())
        return "<invalid>";

    const OpInfo &info = opInfo(inst.op);
    char buf[96];
    std::string m(info.mnemonic);

    auto r = [](unsigned reg) { return std::string(regName(reg)); };

    switch (inst.op) {
      case Op::SLL:
      case Op::SRL:
      case Op::SRA:
        std::snprintf(buf, sizeof(buf), "%-7s %s, %s, %u", m.c_str(),
                      r(inst.rd).c_str(), r(inst.rt).c_str(), inst.shamt);
        break;
      case Op::SLLV:
      case Op::SRLV:
      case Op::SRAV:
        std::snprintf(buf, sizeof(buf), "%-7s %s, %s, %s", m.c_str(),
                      r(inst.rd).c_str(), r(inst.rt).c_str(),
                      r(inst.rs).c_str());
        break;
      case Op::JR:
      case Op::MTHI:
      case Op::MTLO:
        std::snprintf(buf, sizeof(buf), "%-7s %s", m.c_str(),
                      r(inst.rs).c_str());
        break;
      case Op::JALR:
        std::snprintf(buf, sizeof(buf), "%-7s %s, %s", m.c_str(),
                      r(inst.rd).c_str(), r(inst.rs).c_str());
        break;
      case Op::SYSCALL:
      case Op::BREAK:
        std::snprintf(buf, sizeof(buf), "%s", m.c_str());
        break;
      case Op::MFHI:
      case Op::MFLO:
        std::snprintf(buf, sizeof(buf), "%-7s %s", m.c_str(),
                      r(inst.rd).c_str());
        break;
      case Op::MULT:
      case Op::MULTU:
      case Op::DIV:
      case Op::DIVU:
        std::snprintf(buf, sizeof(buf), "%-7s %s, %s", m.c_str(),
                      r(inst.rs).c_str(), r(inst.rt).c_str());
        break;
      case Op::BLTZ:
      case Op::BGEZ:
      case Op::BLEZ:
      case Op::BGTZ:
        std::snprintf(buf, sizeof(buf), "%-7s %s, 0x%x", m.c_str(),
                      r(inst.rs).c_str(),
                      pc + 4 + (uint32_t(inst.imm) << 2));
        break;
      case Op::BEQ:
      case Op::BNE:
        std::snprintf(buf, sizeof(buf), "%-7s %s, %s, 0x%x", m.c_str(),
                      r(inst.rs).c_str(), r(inst.rt).c_str(),
                      pc + 4 + (uint32_t(inst.imm) << 2));
        break;
      case Op::J:
      case Op::JAL:
        std::snprintf(buf, sizeof(buf), "%-7s 0x%x", m.c_str(),
                      ((pc + 4) & 0xf0000000u) | (inst.target << 2));
        break;
      case Op::LUI:
        std::snprintf(buf, sizeof(buf), "%-7s %s, 0x%x", m.c_str(),
                      r(inst.rt).c_str(), uint32_t(inst.imm) & 0xffffu);
        break;
      default:
        if (info.isLoad || info.isStore) {
            std::snprintf(buf, sizeof(buf), "%-7s %s, %d(%s)", m.c_str(),
                          r(inst.rt).c_str(), inst.imm,
                          r(inst.rs).c_str());
        } else if (info.format == Format::R) {
            std::snprintf(buf, sizeof(buf), "%-7s %s, %s, %s", m.c_str(),
                          r(inst.rd).c_str(), r(inst.rs).c_str(),
                          r(inst.rt).c_str());
        } else {
            std::snprintf(buf, sizeof(buf), "%-7s %s, %s, %d", m.c_str(),
                          r(inst.rt).c_str(), r(inst.rs).c_str(),
                          inst.imm);
        }
        break;
    }
    return buf;
}

} // namespace irep::isa
