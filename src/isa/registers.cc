#include "isa/registers.hh"

#include <array>
#include <cctype>
#include <string>

namespace irep::isa
{

namespace
{

constexpr std::array<std::string_view, numIntRegs> names = {
    "$zero", "$at", "$v0", "$v1", "$a0", "$a1", "$a2", "$a3",
    "$t0", "$t1", "$t2", "$t3", "$t4", "$t5", "$t6", "$t7",
    "$s0", "$s1", "$s2", "$s3", "$s4", "$s5", "$s6", "$s7",
    "$t8", "$t9", "$k0", "$k1", "$gp", "$sp", "$fp", "$ra",
};

} // namespace

std::string_view
regName(unsigned reg)
{
    if (reg >= numIntRegs)
        return "$??";
    return names[reg];
}

int
parseRegName(std::string_view name)
{
    if (name.empty())
        return -1;
    std::string full(name);
    if (full[0] != '$')
        full = "$" + full;

    // Numeric form: $0 .. $31.
    if (full.size() > 1 && std::isdigit(static_cast<unsigned char>(full[1]))) {
        int value = 0;
        for (size_t i = 1; i < full.size(); ++i) {
            if (!std::isdigit(static_cast<unsigned char>(full[i])))
                return -1;
            value = value * 10 + (full[i] - '0');
        }
        return value < static_cast<int>(numIntRegs) ? value : -1;
    }

    for (unsigned i = 0; i < numIntRegs; ++i) {
        if (names[i] == full)
            return static_cast<int>(i);
    }
    if (full == "$s8")
        return regFP;
    return -1;
}

} // namespace irep::isa
