/**
 * @file
 * MIPS-I integer-subset instruction definitions: semantic opcodes, a
 * decoded-instruction record, and binary encode/decode/disassemble.
 *
 * The subset covers all MIPS-I integer computation, memory, and control
 * instructions (no floating point, no coprocessor, no delay slots —
 * see DESIGN.md for the delay-slot substitution note).
 */

#ifndef IREP_ISA_INSTRUCTION_HH
#define IREP_ISA_INSTRUCTION_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace irep::isa
{

/** Semantic operation of an instruction. */
enum class Op : uint8_t
{
    // Shifts.
    SLL, SRL, SRA, SLLV, SRLV, SRAV,
    // Register jumps.
    JR, JALR,
    // Traps.
    SYSCALL, BREAK,
    // HI/LO moves.
    MFHI, MTHI, MFLO, MTLO,
    // Multiply / divide.
    MULT, MULTU, DIV, DIVU,
    // Three-register ALU.
    ADD, ADDU, SUB, SUBU, AND, OR, XOR, NOR, SLT, SLTU,
    // REGIMM branches.
    BLTZ, BGEZ,
    // Jumps.
    J, JAL,
    // Immediate branches.
    BEQ, BNE, BLEZ, BGTZ,
    // Immediate ALU.
    ADDI, ADDIU, SLTI, SLTIU, ANDI, ORI, XORI, LUI,
    // Loads.
    LB, LH, LW, LBU, LHU,
    // Stores.
    SB, SH, SW,

    NUM_OPS,
    INVALID = NUM_OPS,
};

/** Binary instruction format. */
enum class Format : uint8_t { R, I, J };

/** Static properties of an Op, used by the simulator and analyses. */
struct OpInfo
{
    std::string_view mnemonic;
    Format format;

    bool readsRs : 1;
    bool readsRt : 1;
    bool writesRd : 1;      //!< destination is the rd field
    bool writesRt : 1;      //!< destination is the rt field
    bool isLoad : 1;
    bool isStore : 1;
    bool isBranch : 1;      //!< PC-relative conditional branch
    bool isJump : 1;        //!< unconditional control transfer
    bool isCall : 1;        //!< writes a return address (jal/jalr)
    bool writesHiLo : 1;
    bool readsHi : 1;
    bool readsLo : 1;
    bool unsignedImm : 1;   //!< immediate is zero-extended

    uint8_t memBytes;       //!< access size for loads/stores, else 0
};

/** Look up the static properties of an operation. */
const OpInfo &opInfo(Op op);

/**
 * Map a textual mnemonic to an Op.
 * @return Op::INVALID when the mnemonic is not a base instruction.
 */
Op opFromMnemonic(std::string_view mnemonic);

/**
 * True when @p op terminates a basic block: any control transfer
 * (branch or jump), a trap (syscall/break), or an invalid encoding.
 * The translation cache stops decoding a block after such an
 * instruction.
 */
bool endsBasicBlock(Op op);

/**
 * A decoded instruction. Field validity depends on the format; unused
 * fields are zero.
 */
struct Instruction
{
    Op op = Op::INVALID;
    uint8_t rs = 0;
    uint8_t rt = 0;
    uint8_t rd = 0;
    uint8_t shamt = 0;
    int32_t imm = 0;        //!< sign- or zero-extended per opInfo
    uint32_t target = 0;    //!< 26-bit jump target field

    bool valid() const { return op != Op::INVALID; }

    /**
     * Destination register of this instruction, or -1 if it writes no
     * general register (stores, branches, j, mult/div, ...).
     */
    int destReg() const;

    /** Number of general source registers (0, 1 or 2). */
    int numSrcRegs() const;

    /** The i-th general source register (i < numSrcRegs()). */
    int srcReg(int i) const;
};

/** Decode a 32-bit instruction word. Invalid encodings yield
 *  Op::INVALID rather than trapping; the simulator raises fatal()
 *  when such an instruction is actually executed. */
Instruction decode(uint32_t word);

/** Encode a decoded instruction back into a 32-bit word. */
uint32_t encode(const Instruction &inst);

/**
 * Disassemble an instruction.
 *
 * @param inst Decoded instruction.
 * @param pc   Address of the instruction (for branch/jump targets).
 */
std::string disassemble(const Instruction &inst, uint32_t pc);

} // namespace irep::isa

#endif // IREP_ISA_INSTRUCTION_HH
