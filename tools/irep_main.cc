/**
 * @file
 * `irep` — the command-line front door to the toolchain.
 *
 *   irep compile <file.mc>                 MiniC -> assembly on stdout
 *   irep disasm <file.mc|file.s>           program image disassembly
 *   irep run <file.mc|file.s> [options]    execute, print output/exit
 *   irep analyze <file.mc|file.s> [opts]   full repetition report
 *   irep bench <workload> [opts]           analyze a built-in workload
 *   irep bench all [opts]                  the whole suite, workloads
 *                                          run in parallel (--jobs)
 *   irep bench --generated N [opts]        population study: N
 *                                          generated MiniC programs,
 *                                          per-metric distributions
 *                                          (irep-pop-1 with
 *                                          --stats-json)
 *   irep record <workload|file> [opts]     record a binary retire
 *                                          trace (src/trace_io) for
 *                                          later --from-trace replay
 *   irep fuzz [opts]                       differential fuzzing of
 *                                          the minicc->asm->sim
 *                                          pipeline against the
 *                                          reference interpreter
 *   irep serve [opts]                      loopback analysis daemon
 *                                          (src/serve): POST /analyze
 *                                          returns the irep-stats-1
 *                                          document; repeats replay
 *                                          from the IREP_TRACE_DIR
 *                                          cache
 *   irep version                           build id + schema versions
 *                                          as JSON
 *
 * Options:
 *   --input <file>     bytes served by the read syscall
 *   --skip N           instructions to skip before measuring
 *   --window N         measurement window (default 5,000,000)
 *   --max N            execution cap for `run` (default 1B)
 *   --exec MODE        simulator backend: `interp` (default) or
 *                      `bbcache` (basic-block translation cache);
 *                      IREP_EXEC sets the default
 *   --jobs N           worker threads for `bench all` (default:
 *                      hardware concurrency; 1 = serial)
 *   --window-jobs N    threads sharding the analyses inside each
 *                      window for `analyze`/`bench` (default 1 =
 *                      serial dispatch; stats stay byte-identical)
 *   --repetitions N    timed repetitions per workload for `bench all`
 *                      (median/CI in the irep-bench-2 report)
 *   --stats-json FILE  write the full stats report as JSON,
 *                      atomically (`-` = stdout; the human report
 *                      moves to stderr)
 *   --profile-json FILE  enable the profiler and write the merged
 *                      Chrome trace-event file (`-` = stdout)
 *   --trace FILE       write sampled retire records (.jsonl = JSONL)
 *   --trace-sample N   record every Nth retired instruction
 *   --progress N       stderr heartbeat every N instructions
 *   --from-trace FILE  analyze/bench off a recorded trace instead of
 *                      simulating (adopts the trace's skip/window)
 *   --output FILE      where `record` writes the trace
 *   --analyses LIST    comma-separated analysis set for
 *                      `analyze`/`bench <workload>`/`bench
 *                      --generated` (e.g. `tracker,classes`); the
 *                      tracker always runs
 *   --generated N      `bench` population mode: analyze N generated
 *                      programs instead of a named workload
 *   --pop-seed S       seed of generated program 0 (program i uses
 *                      S+i; default 1)
 *
 * `irep bench all` also consults the IREP_TRACE_DIR trace cache (see
 * bench/harness/suite.hh): workloads record on first run and replay
 * thereafter. Sources ending in `.s` are assembled directly; anything
 * else is treated as MiniC (with the runtime library linked in).
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>

#include "asm/assembler.hh"
#include "core/pipeline.hh"
#include "fuzz/fuzz.hh"
#include "harness/population.hh"
#include "harness/suite.hh"
#include "isa/instruction.hh"
#include "minicc/compiler.hh"
#include "serve/server.hh"
#include "serve/service.hh"
#include "sim/machine.hh"
#include "sim/trace.hh"
#include "support/json.hh"
#include "support/logging.hh"
#include "support/outfile.hh"
#include "support/parallel.hh"
#include "support/parse.hh"
#include "support/prof.hh"
#include "support/signals.hh"
#include "support/stat_math.hh"
#include "support/stats.hh"
#include "support/table.hh"
#include "trace_io/cache.hh"
#include "trace_io/reader.hh"
#include "trace_io/writer.hh"
#include "usage.hh"
#include "workloads/runtime.hh"
#include "workloads/workloads.hh"

using namespace irep;

namespace
{

struct Options
{
    std::string command;
    std::string target;
    std::string inputFile;
    uint64_t skip = 0;
    uint64_t window = 5'000'000;
    uint64_t max = 1'000'000'000;
    unsigned jobs = 0;      //!< 0 = parallel::defaultJobs()
    unsigned windowJobs = 0;    //!< 0 = IREP_WINDOW_JOBS or serial
    bool skipSet = false;   //!< --skip given explicitly
    bool windowSet = false; //!< --window given explicitly
    /** --exec backend (unset = the machine's IREP_EXEC default). */
    std::optional<sim::ExecBackend> exec;

    std::string statsJsonFile;
    std::string profileJsonFile;
    unsigned repetitions = 0;   //!< 0 = IREP_BENCH_REPS or 1
    std::string traceFile;
    uint64_t traceSample = 1;
    uint64_t progress = 0;
    std::string fromTrace;  //!< replay source for analyze/bench
    std::string outputFile; //!< trace destination for record
    uint16_t port = 0;      //!< serve: 0 = ephemeral
    std::string analyses;   //!< --analyses set (empty = all enabled)

    // bench --generated (population study) only:
    uint32_t generated = 0;     //!< programs to generate (0 = off)
    uint64_t popSeed = 1;       //!< seed of generated program 0
    bool popSeedSet = false;    //!< --pop-seed given explicitly

    // fuzz only:
    uint64_t seed = 1;
    int count = 100;
    int maxStmts = 24;
    std::string reproDir = "fuzz-repros";
    bool verbose = false;
    bool fuzzFlagSeen = false;  //!< any fuzz-only flag was given
    bool maxStmtsSet = false;   //!< --max-stmts given explicitly
};

using cli::usageText;

[[noreturn]] void
usage()
{
    std::fputs(usageText, stderr);
    std::exit(2);
}

using parse::parseU64;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open '", path, "'");
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
endsWith(const std::string &s, const char *suffix)
{
    const size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Compile or assemble the target into a program image. */
assem::Program
buildTarget(const std::string &path)
{
    const std::string text = readFile(path);
    if (endsWith(path, ".s") || endsWith(path, ".asm"))
        return assem::assemble(text);
    return minicc::compileToProgram(workloads::runtimeSource() + text);
}

Options
parseArgs(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h" || arg == "help") {
            std::fputs(usageText, stdout);
            std::exit(0);
        }
    }

    Options opts;
    if (argc < 2)
        usage();
    opts.command = argv[1];
    // `fuzz`, `serve` and `version` take no target; `bench` takes a
    // workload name, `all`, or no target at all in population mode
    // (`irep bench --generated N`); every other command requires one.
    int first_flag = 2;
    const bool targetless = opts.command == "fuzz" ||
        opts.command == "serve" || opts.command == "version";
    const bool benchFlagsOnly = opts.command == "bench" &&
        argc >= 3 && argv[2][0] == '-';
    if (!targetless && !benchFlagsOnly) {
        if (argc < 3)
            usage();
        opts.target = argv[2];
        first_flag = 3;
    }
    for (int i = first_flag; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage();
            return argv[++i];
        };
        if (arg == "--input")
            opts.inputFile = next();
        else if (arg == "--skip") {
            opts.skip = parseU64(arg, next());
            opts.skipSet = true;
        }
        else if (arg == "--window") {
            opts.window = parseU64(arg, next());
            opts.windowSet = true;
        }
        else if (arg == "--max")
            opts.max = parseU64(arg, next());
        else if (arg == "--exec")
            opts.exec = sim::parseExecBackend(arg, next());
        else if (arg == "--jobs") {
            opts.jobs = unsigned(parseU64(arg, next()));
            fatalIf(opts.jobs == 0, "--jobs must be positive");
        }
        else if (arg == "--window-jobs") {
            opts.windowJobs = unsigned(parseU64(arg, next()));
            fatalIf(opts.windowJobs == 0,
                    "--window-jobs must be positive (1 = serial)");
        }
        else if (arg == "--stats-json")
            opts.statsJsonFile = next();
        else if (arg == "--profile-json")
            opts.profileJsonFile = next();
        else if (arg == "--repetitions") {
            opts.repetitions = unsigned(parseU64(arg, next()));
            fatalIf(opts.repetitions == 0,
                    "--repetitions must be positive");
        }
        else if (arg == "--trace")
            opts.traceFile = next();
        else if (arg == "--trace-sample")
            opts.traceSample = parseU64(arg, next());
        else if (arg == "--progress")
            opts.progress = parseU64(arg, next());
        else if (arg == "--from-trace")
            opts.fromTrace = next();
        else if (arg == "--output")
            opts.outputFile = next();
        else if (arg == "--port") {
            const uint64_t port = parseU64(arg, next());
            fatalIf(port > 65535, "--port must be <= 65535");
            opts.port = uint16_t(port);
        }
        else if (arg == "--seed") {
            opts.seed = parseU64(arg, next());
            opts.fuzzFlagSeen = true;
        }
        else if (arg == "--count") {
            opts.count = int(parseU64(arg, next()));
            fatalIf(opts.count == 0, "--count must be positive");
            opts.fuzzFlagSeen = true;
        }
        else if (arg == "--max-stmts") {
            opts.maxStmts = int(parseU64(arg, next()));
            fatalIf(opts.maxStmts == 0, "--max-stmts must be positive");
            opts.maxStmtsSet = true;
        }
        else if (arg == "--generated") {
            opts.generated = unsigned(parseU64(arg, next()));
            fatalIf(opts.generated == 0,
                    "--generated must be a positive program count");
        }
        else if (arg == "--pop-seed") {
            opts.popSeed = parseU64(arg, next());
            opts.popSeedSet = true;
        }
        else if (arg == "--analyses") {
            opts.analyses = next();
            fatalIf(opts.analyses.empty(),
                    "--analyses needs a non-empty analysis set");
        }
        else if (arg == "--repro-dir") {
            opts.reproDir = next();
            opts.fuzzFlagSeen = true;
        }
        else if (arg == "--verbose") {
            opts.verbose = true;
            opts.fuzzFlagSeen = true;
        }
        else
            usage();
    }
    fatalIf(opts.traceSample == 0, "--trace-sample must be positive");
    fatalIf(opts.fuzzFlagSeen && opts.command != "fuzz",
            "--seed/--count/--repro-dir/--verbose only "
            "apply to `fuzz`");
    fatalIf(opts.maxStmtsSet && opts.command != "fuzz" &&
                opts.generated == 0,
            "--max-stmts only applies to `fuzz` and "
            "`bench --generated`");
    fatalIf(opts.generated != 0 && opts.command != "bench",
            "--generated only applies to `bench`");
    fatalIf(opts.generated != 0 && !opts.target.empty(),
            "--generated mints its own programs; drop the workload "
            "target");
    fatalIf(opts.popSeedSet && opts.generated == 0,
            "--pop-seed only applies with --generated");
    fatalIf(opts.command == "bench" && opts.target.empty() &&
                opts.generated == 0,
            "`bench` needs a workload name, `all`, or --generated N");
    fatalIf(!opts.analyses.empty() && opts.command != "analyze" &&
                !(opts.command == "bench" && opts.target != "all"),
            "--analyses only applies to `analyze`, `bench <workload>` "
            "and `bench --generated`");
    fatalIf(!opts.fromTrace.empty() && opts.generated != 0,
            "--from-trace cannot be combined with --generated "
            "(population runs replay via the IREP_TRACE_DIR cache)");

    // Replay drives the analyses straight off a recorded stream, so
    // it only makes sense where analyses run; reject it everywhere
    // else instead of silently simulating.
    const bool replayable = opts.command == "analyze" ||
        (opts.command == "bench" && opts.target != "all");
    fatalIf(!opts.fromTrace.empty() && !replayable,
            "--from-trace only applies to `analyze` and "
            "`bench <workload>`; `", opts.command,
            opts.command == "bench" ? " all" : "",
            "` cannot replay a trace");
    fatalIf(!opts.outputFile.empty() && opts.command != "record",
            "--output only applies to `record`");
    fatalIf(opts.port != 0 && opts.command != "serve",
            "--port only applies to `serve`");
    // Window sharding only exists where the analyses run.
    fatalIf(opts.windowJobs != 0 && opts.command != "analyze" &&
                opts.command != "bench",
            "--window-jobs only applies to `analyze` and `bench`");
    fatalIf(opts.repetitions != 0 &&
                !(opts.command == "bench" && opts.target == "all"),
            "--repetitions only applies to `bench all`");
    fatalIf(opts.statsJsonFile == "-" && opts.profileJsonFile == "-",
            "--stats-json and --profile-json cannot both write to "
            "stdout");
    // The backend only matters where a simulator actually runs.
    fatalIf(opts.exec.has_value() &&
                (opts.command == "compile" || opts.command == "disasm"),
            "--exec only applies to commands that execute "
            "(run/analyze/bench/record/fuzz)");
    return opts;
}

/**
 * The requested retire-stream observers, attached to a machine for the
 * duration of a command. When no flag asks for them nothing is
 * attached — the default path keeps an empty observer list.
 */
struct Instrumentation
{
    std::ofstream traceOut;
    std::unique_ptr<sim::RetireTracer> tracer;
    std::unique_ptr<sim::ProgressMeter> progress;

    Instrumentation(const Options &opts, sim::Machine &machine)
    {
        if (!opts.traceFile.empty()) {
            traceOut.open(opts.traceFile,
                          std::ios::binary | std::ios::trunc);
            fatalIf(!traceOut, "cannot open '", opts.traceFile, "'");
            sim::TraceConfig config;
            config.sampleInterval = opts.traceSample;
            if (endsWith(opts.traceFile, ".jsonl"))
                config.format = sim::TraceConfig::Format::Jsonl;
            tracer = std::make_unique<sim::RetireTracer>(traceOut,
                                                         config);
            machine.addObserver(tracer.get());
        }
        if (opts.progress) {
            progress = std::make_unique<sim::ProgressMeter>(
                opts.progress, std::cerr);
            machine.addObserver(progress.get());
        }
    }
};

int
cmdCompile(const Options &opts)
{
    const std::string text = readFile(opts.target);
    std::fputs(
        minicc::compileToAsm(workloads::runtimeSource() + text)
            .c_str(),
        stdout);
    return 0;
}

int
cmdDisasm(const Options &opts)
{
    const assem::Program program = buildTarget(opts.target);
    const assem::FunctionInfo *current = nullptr;
    for (size_t i = 0; i < program.text.size(); ++i) {
        const uint32_t pc =
            assem::Layout::textBase + uint32_t(i) * 4;
        const assem::FunctionInfo *func = program.functionAt(pc);
        if (func != current && func) {
            std::printf("\n%s:  (args=%u, %u instructions)\n",
                        func->name.c_str(), func->numArgs,
                        func->size / 4);
        }
        current = func;
        const isa::Instruction inst = isa::decode(program.text[i]);
        std::printf("  %08x:  %08x  %s\n", pc, program.text[i],
                    isa::disassemble(inst, pc).c_str());
    }
    std::printf("\n%zu instructions, %zu bytes of data, entry 0x%x\n",
                program.text.size(), program.data.size(),
                program.entry);
    return 0;
}

int
cmdRun(const Options &opts)
{
    const assem::Program program = buildTarget(opts.target);
    sim::Machine machine(program);
    if (opts.exec)
        machine.setExecBackend(*opts.exec);
    if (!opts.inputFile.empty())
        machine.setInput(readFile(opts.inputFile));
    Instrumentation instr(opts, machine);
    machine.run(opts.max);
    std::fputs(machine.output().c_str(), stdout);
    if (!machine.halted()) {
        std::fprintf(stderr,
                     "irep: stopped after %llu instructions "
                     "(raise --max)\n",
                     (unsigned long long)machine.instret());
        return 3;
    }
    std::fprintf(stderr, "irep: exit %d after %llu instructions\n",
                 machine.exitCode(),
                 (unsigned long long)machine.instret());
    return machine.exitCode();
}

/**
 * The stream the human-readable report belongs on: stdout normally,
 * stderr when `--stats-json -` claims stdout for the machine-readable
 * document (a consumer piping `irep ... --stats-json - | jq` must
 * never see report text mixed into the JSON).
 */
FILE *
reportStream(const Options &opts)
{
    return opts.statsJsonFile == "-" ? stderr : stdout;
}

void
report(core::AnalysisPipeline &pipeline, uint64_t measured, FILE *out)
{
    const auto stats = pipeline.tracker().stats();
    std::fprintf(out, "window: %llu instructions\n\n",
                 (unsigned long long)measured);

    std::fprintf(out, "repetition (Table 1):\n");
    std::fprintf(out, "  dynamic repeated:        %6.1f%%\n",
                 stats.pctDynRepeated());
    std::fprintf(out, "  statics executed:        %6.1f%%\n",
                 stats.pctStaticExecuted());
    std::fprintf(out, "  executed statics repeat: %6.1f%%\n",
                 stats.pctStaticRepeatedOfExecuted());
    std::fprintf(out, "  unique instances: %llu (avg %.0f repeats)\n\n",
                 (unsigned long long)stats.uniqueRepeatableInstances,
                 stats.avgRepeatsPerInstance);

    // Every section below belongs to a toggleable analysis
    // (--analyses); a disabled analysis has no object to read, so its
    // section simply disappears from the report.
    const core::PipelineConfig &config = pipeline.config();
    if (config.enableGlobal) {
        std::fprintf(out,
                     "sources (Table 3, %% of stream / propensity):\n");
        for (unsigned t = 0; t < core::numGlobalTags; ++t) {
            const auto tag = core::GlobalTag(t);
            std::fprintf(out, "  %-18s %6.1f%%  /  %5.1f%%\n",
                         std::string(core::globalTagName(tag)).c_str(),
                         pipeline.taint().stats().pctOverall(tag),
                         pipeline.taint().stats().propensity(tag));
        }
    }

    if (config.enableLocal) {
        std::fprintf(out, "\nwithin-function categories (Table 5, %% of "
                     "stream):\n");
        for (unsigned c = 0; c < core::numLocalCats; ++c) {
            const auto cat = core::LocalCat(c);
            std::fprintf(out, "  %-18s %6.2f%%\n",
                         std::string(core::localCatName(cat)).c_str(),
                         pipeline.local().stats().pctOverall(cat));
        }
    }

    if (config.enableFunction) {
        const auto funcs = pipeline.functions().stats();
        const auto memo = pipeline.functions().memoStats();
        std::fprintf(out, "\nfunctions (Tables 4, 8):\n");
        std::fprintf(out, "  dynamic calls:       %llu\n",
                     (unsigned long long)funcs.dynamicCalls);
        std::fprintf(out, "  all-args repeated:   %6.1f%%\n",
                     funcs.pctAllArgsRepeated());
        std::fprintf(out, "  memoizable calls:    %6.1f%%\n",
                     memo.pctCleanOfAll());
    }

    if (config.enableReuse || config.enableValuePrediction) {
        std::fprintf(out, "\nhardware (Table 10 + extension):\n");
        if (config.enableReuse) {
            std::fprintf(out, "  8K 4-way reuse buffer: %5.1f%% of all "
                         "instructions\n",
                         pipeline.reuse().stats().pctOfAll());
        }
        if (config.enableValuePrediction) {
            const auto &pred = pipeline.prediction();
            std::fprintf(out,
                         "  last-value predictor:  %5.1f%% of writes\n",
                         pred.lastValue().pctOfEligible());
            std::fprintf(out,
                         "  stride predictor:      %5.1f%% of writes\n",
                         pred.stride().pctOfEligible());
            std::fprintf(out,
                         "  context predictor:     %5.1f%% of writes\n",
                         pred.context().pctOfEligible());
        }
    }

    if (config.enableAttribution) {
        const core::AttributionStats &attr =
            pipeline.attribution().stats();
        std::fprintf(out, "\nattribution (%% of stream / propensity / "
                     "%% of repetition):\n");
        for (unsigned s = 0; s < core::numLoopStructures; ++s) {
            const auto st = core::LoopStructure(s);
            std::fprintf(out,
                         "  %-18s %6.1f%%  /  %5.1f%%  /  %5.1f%%\n",
                         std::string(
                             core::loopStructureName(st)).c_str(),
                         attr.pctOfAll(st), attr.propensity(st),
                         attr.pctOfRepetition(st));
        }
    }
}

/**
 * Write the schema-stable JSON report through the shared document
 * builder (serve::writeStatsDoc — the daemon's /analyze responses use
 * the same code, so CLI file and daemon answer can never drift). The
 * document is published atomically (tmp + rename; `-` = stdout);
 * with the profiler enabled an `irep-prof-1` `profile` block rides
 * along.
 */
void
writeStatsJson(const Options &opts,
               core::AnalysisPipeline &pipeline,
               const std::string &workload)
{
    AtomicOutFile file(opts.statsJsonFile);
    serve::StatsDocSpec spec;
    spec.command = opts.command;
    spec.target = opts.target;
    spec.workload = workload;
    spec.input = opts.inputFile;
    spec.withProfile = prof::enabled();
    serve::writeStatsDoc(file.stream(), pipeline, spec);
    file.commit();
}

int
analyzeMachine(const Options &opts, sim::Machine &machine,
               const std::string &input, uint64_t default_skip,
               const std::string &workload)
{
    Instrumentation instr(opts, machine);
    core::PipelineConfig config;
    config.skipInstructions = opts.skip ? opts.skip : default_skip;
    config.windowInstructions = opts.window;
    config.windowJobs = opts.windowJobs;
    if (!opts.analyses.empty()) {
        std::string error;
        fatalIf(!core::applyAnalysisSet(opts.analyses, config, &error),
                error);
    }

    // Replay adopts the skip/window the trace was recorded under —
    // silently measuring a different window than the stream holds
    // would skew every table, so conflicting flags are an error.
    std::unique_ptr<trace_io::TraceReader> reader;
    if (!opts.fromTrace.empty()) {
        reader =
            std::make_unique<trace_io::TraceReader>(opts.fromTrace);
        const trace_io::TraceHeader &h = reader->header();
        fatalIf(opts.skipSet && opts.skip != h.skip,
                "--skip ", opts.skip, " conflicts with '",
                opts.fromTrace, "' (recorded with skip ", h.skip,
                "); drop the flag to adopt the trace's value");
        fatalIf(opts.windowSet && opts.window != h.window,
                "--window ", opts.window, " conflicts with '",
                opts.fromTrace, "' (recorded with window ", h.window,
                "); drop the flag to adopt the trace's value");
        config.skipInstructions = h.skip;
        config.windowInstructions = h.window;
        reader->bind(machine, input);
    }

    core::AnalysisPipeline pipeline(machine, config);
    if (instr.progress)
        pipeline.setProgress(instr.progress.get());
    const uint64_t measured =
        reader ? pipeline.runFromSource(*reader) : pipeline.run();
    if (reader) {
        // Note the mode on stderr only: stdout stays byte-identical
        // to the live-simulation run of the same stream.
        std::fprintf(stderr, "irep: replayed %llu records from %s\n",
                     (unsigned long long)reader->dispatched(),
                     opts.fromTrace.c_str());
    }
    report(pipeline, measured, reportStream(opts));
    if (!opts.statsJsonFile.empty())
        writeStatsJson(opts, pipeline, workload);
    return 0;
}

int
cmdAnalyze(const Options &opts)
{
    const assem::Program program = buildTarget(opts.target);
    sim::Machine machine(program);
    if (opts.exec)
        machine.setExecBackend(*opts.exec);
    std::string input;
    if (!opts.inputFile.empty()) {
        input = readFile(opts.inputFile);
        machine.setInput(input);
    }
    std::fprintf(reportStream(opts), "=== irep analysis: %s ===\n",
                 opts.target.c_str());
    return analyzeMachine(opts, machine, input, 0, "");
}

/**
 * `irep bench all`: the full suite with the workloads simulated in
 * parallel (each owns its machine and pipeline; output order is
 * canonical regardless of scheduling).
 */
int
cmdBenchAll(const Options &opts)
{
    bench::SuiteConfig config;
    config.skip = opts.skip ? opts.skip : 1'000'000;
    config.window = opts.window;
    config.jobs = opts.jobs;
    config.windowJobs = opts.windowJobs;
    config.repetitions = opts.repetitions
        ? opts.repetitions
        : unsigned(parse::envU64("IREP_BENCH_REPS", 1));
    config.exec = opts.exec;
    bench::Suite suite(config);

    const auto &entries = suite.entries();

    // Analysis results go to the report stream (byte-identical for
    // any --jobs); wall-clock timing goes to stderr, where runs
    // legitimately vary.
    FILE *rep = reportStream(opts);
    std::fprintf(rep, "=== irep bench suite: %zu workloads ===\n",
                 entries.size());
    TextTable table;
    table.header({"bench", "window", "repeat%"});
    for (const auto &entry : entries) {
        table.row({entry.name,
                   TextTable::count(entry.windowExecuted),
                   TextTable::num(entry.pipeline->tracker()
                                      .stats()
                                      .pctDynRepeated())});
    }
    std::fputs(table.render().c_str(), rep);

    for (const auto &entry : entries) {
        const double median = stat::median(entry.runSeconds);
        const stat::Interval ci = stat::medianCI(entry.runSeconds);
        if (suite.repetitions() > 1) {
            std::fprintf(stderr,
                         "irep: %-10s median %.3fs of %zu runs "
                         "(95%% CI [%.3f, %.3f], %s)\n",
                         entry.name.c_str(), median,
                         entry.runSeconds.size(), ci.lo, ci.hi,
                         entry.timingReplayed ? "replay" : "live");
        } else {
            const auto &t = entry.pipeline->timing();
            std::fprintf(stderr, "irep: %-10s %.2fs  %.1f mips\n",
                         entry.name.c_str(), median,
                         t.window.mips());
        }
    }
    std::fprintf(stderr,
                 "irep: %u jobs: suite wall-clock %.2fs, sum of "
                 "workloads %.2fs (%.2fx)\n",
                 suite.jobs(), suite.suiteSeconds(),
                 suite.workloadSeconds(),
                 suite.suiteSeconds() > 0.0
                     ? suite.workloadSeconds() / suite.suiteSeconds()
                     : 0.0);
    if (!opts.statsJsonFile.empty())
        suite.writeJson(opts.statsJsonFile);
    return 0;
}

/**
 * `irep bench --generated N`: the population study. N deterministic
 * MiniC programs are minted from the fuzz generator (seeds --pop-seed
 * .. --pop-seed+N-1), compiled, and run through the full pipeline;
 * the report is per-metric *distributions* across the population
 * (bench/harness/population.hh). Runs record into the IREP_TRACE_DIR
 * cache on first contact and replay thereafter — a population is
 * simulated exactly once.
 */
int
cmdBenchPopulation(const Options &opts)
{
    bench::PopulationConfig config;
    config.count = opts.generated;
    config.popSeed = opts.popSeed;
    config.maxStmts = opts.maxStmts;
    config.jobs = opts.jobs;
    config.exec = opts.exec;
    // Generated programs are small, so the default measures from
    // instruction 0 (--skip overrides) until halt or window clip.
    config.pipeline.skipInstructions = opts.skip;
    config.pipeline.windowInstructions = opts.window;
    config.pipeline.windowJobs = opts.windowJobs;
    if (!opts.analyses.empty()) {
        std::string error;
        fatalIf(!core::applyAnalysisSet(opts.analyses,
                                        config.pipeline, &error),
                error);
    }

    bench::PopulationSuite suite(config);
    suite.results();

    // The distribution table is deterministic (any --jobs,
    // --window-jobs, cache state) and goes to the report stream;
    // timing and cache provenance vary per run and go to stderr.
    FILE *rep = reportStream(opts);
    std::fprintf(rep,
                 "=== irep generated population: %u programs "
                 "(pop-seed %llu) ===\n",
                 unsigned(opts.generated),
                 (unsigned long long)opts.popSeed);
    std::fputs(suite.renderTable().c_str(), rep);
    std::fprintf(stderr,
                 "irep: population: %u traces replayed, %u recorded, "
                 "wall-clock %.2fs\n",
                 suite.tracesReplayed(), suite.tracesRecorded(),
                 suite.suiteSeconds());
    if (!opts.statsJsonFile.empty())
        suite.writeJson(opts.statsJsonFile);
    return 0;
}

int
cmdBench(const Options &opts)
{
    if (opts.generated != 0)
        return cmdBenchPopulation(opts);
    if (opts.target == "all")
        return cmdBenchAll(opts);
    const auto &workload = workloads::workloadByName(opts.target);
    sim::Machine machine(workloads::buildProgram(workload));
    if (opts.exec)
        machine.setExecBackend(*opts.exec);
    machine.setInput(workload.input);
    std::fprintf(reportStream(opts), "=== irep workload: %s (%s) ===\n",
                 workload.name.c_str(),
                 workload.specAnalogue.c_str());
    return analyzeMachine(opts, machine, workload.input, 1'000'000,
                          workload.name);
}

/**
 * `irep record`: run the target under a TraceWriter only — no
 * analyses attached, so recording runs at near raw-simulation speed —
 * and publish the binary trace for --from-trace / cache replay.
 */
int
cmdRecord(const Options &opts)
{
    // The machine holds a reference to the program, so the program
    // must outlive it in this scope.
    assem::Program program;
    std::string input;
    std::string name = opts.target;
    uint64_t default_skip = 0;

    const workloads::Workload *workload = nullptr;
    for (const workloads::Workload &w : workloads::allWorkloads()) {
        if (w.name == opts.target)
            workload = &w;
    }
    if (workload) {
        fatalIf(!opts.inputFile.empty(),
                "workload '", workload->name,
                "' has a fixed input; --input only applies when "
                "recording a source file");
        program = workloads::buildProgram(*workload);
        input = workload->input;
        default_skip = 1'000'000;   // the `bench` default
    } else {
        program = buildTarget(opts.target);
        if (!opts.inputFile.empty())
            input = readFile(opts.inputFile);
        // "dir/prog.mc" -> "prog", for the default/cache file name.
        const size_t slash = name.find_last_of('/');
        if (slash != std::string::npos)
            name = name.substr(slash + 1);
        const size_t dot = name.find_last_of('.');
        if (dot != std::string::npos && dot > 0)
            name = name.substr(0, dot);
    }
    sim::Machine machine(program);
    if (opts.exec)
        machine.setExecBackend(*opts.exec);
    machine.setInput(input);

    const uint64_t skip = opts.skipSet ? opts.skip : default_skip;
    const uint64_t window = opts.window;

    std::string path = opts.outputFile;
    if (path.empty()) {
        const std::string dir = trace_io::cacheDir();
        path = dir.empty()
            ? trace_io::sanitizeName(name) + ".irtrace"
            : trace_io::cachePath(
                  dir, name,
                  trace_io::identityHash(machine.program(), input),
                  skip, window);
    }

    Instrumentation instr(opts, machine);
    trace_io::TraceWriter writer(path, machine, input, skip, window);
    // A ^C mid-recording must not orphan the temporary: the file is
    // unpublished either way (commit() is the rename), this only
    // keeps the cache directory clean.
    signals::removeOnFatalSignal(writer.tmpPath());
    machine.addObserver(&writer);
    const uint64_t executed = machine.run(skip + window);
    machine.removeObserver(&writer);
    writer.commit();
    signals::clearRemoveOnFatalSignal();

    std::fprintf(stderr,
                 "irep: recorded %llu instructions + %llu syscall "
                 "records (%.1f MiB, skip=%llu window=%llu) to %s\n",
                 (unsigned long long)writer.instrRecords(),
                 (unsigned long long)writer.syscallRecords(),
                 double(writer.bytesWritten()) / (1024.0 * 1024.0),
                 (unsigned long long)skip,
                 (unsigned long long)window, path.c_str());
    if (writer.instrRecords() > 0) {
        const double instrs = double(writer.instrRecords());
        std::fprintf(
            stderr,
            "irep: payload %.2f B/instr raw -> %.2f B/instr stored "
            "(%.2fx, format v%u, %s)\n",
            double(writer.rawPayloadBytes()) / instrs,
            double(writer.storedPayloadBytes()) / instrs,
            writer.storedPayloadBytes() > 0
                ? double(writer.rawPayloadBytes()) /
                    double(writer.storedPayloadBytes())
                : 1.0,
            writer.version(),
            writer.version() >= 2
                ? trace_io::codecName(writer.codec())
                : "uncompressed");
    }
    if (executed < skip + window) {
        std::fprintf(stderr,
                     "irep: note: program halted after %llu "
                     "instructions, before skip+window\n",
                     (unsigned long long)executed);
    }
    return 0;
}

/** `irep version`: the build/schema document, on stdout. */
int
cmdVersion(const Options &)
{
    json::Writer w(std::cout);
    serve::writeVersionDoc(w);
    std::cout << '\n';
    return 0;
}

/**
 * `irep serve`: the analysis daemon. Blocks until SIGINT/SIGTERM or
 * POST /shutdown, then drains in-flight requests before returning.
 */
int
cmdServe(const Options &opts)
{
    // A client that hangs up mid-response must surface as a send
    // error, never kill the daemon. (Sends also pass MSG_NOSIGNAL;
    // this covers any path that doesn't.)
    std::signal(SIGPIPE, SIG_IGN);

    // Block the shutdown signals *before* spawning threads so every
    // worker inherits the mask and delivery funnels into the
    // sigtimedwait() below instead of a random thread.
    sigset_t stopSignals;
    sigemptyset(&stopSignals);
    sigaddset(&stopSignals, SIGINT);
    sigaddset(&stopSignals, SIGTERM);
    pthread_sigmask(SIG_BLOCK, &stopSignals, nullptr);

    serve::ServerConfig config;
    config.port = opts.port;
    config.threads = opts.jobs;
    serve::Server server(config);
    server.start();

    const std::string traceDir = trace_io::cacheDir();
    std::fprintf(stderr,
                 "irep: serving on 127.0.0.1:%u (%u workers, cache %s)\n",
                 unsigned(server.port()),
                 opts.jobs ? opts.jobs : parallel::defaultJobs(),
                 traceDir.empty() ? "off" : traceDir.c_str());

    // Wait for either a shutdown signal or a /shutdown request (the
    // 200ms tick is what notices the latter).
    timespec tick;
    tick.tv_sec = 0;
    tick.tv_nsec = 200'000'000;
    while (!server.stopRequested()) {
        const int sig = sigtimedwait(&stopSignals, nullptr, &tick);
        if (sig == SIGINT || sig == SIGTERM) {
            std::fprintf(stderr,
                         "irep: signal %d: draining %llu in-flight "
                         "request(s)\n",
                         sig,
                         (unsigned long long)
                             server.counters().inFlight.load());
            server.requestStop();
        }
    }
    server.stop();

    const serve::ServerCounters &c = server.counters();
    std::fprintf(stderr,
                 "irep: served %llu requests (%llu analyses: %llu "
                 "simulated, %llu cache hits), %llu errors\n",
                 (unsigned long long)c.requests.load(),
                 (unsigned long long)c.analyses.load(),
                 (unsigned long long)c.simulations.load(),
                 (unsigned long long)c.cacheHits.load(),
                 (unsigned long long)c.errors.load());
    return 0;
}

/**
 * `irep fuzz`: run a differential campaign. Exit 0 when every program
 * matches, 1 when any divergence (or engine crash) was found —
 * minimized repros land in --repro-dir.
 */
int
cmdFuzz(const Options &opts)
{
    fuzz::FuzzOptions config;
    config.seed = opts.seed;
    config.count = opts.count;
    config.maxStmts = opts.maxStmts;
    config.reproDir = opts.reproDir;
    config.maxInstructions = opts.max == 1'000'000'000
        ? 100'000'000 : opts.max;   // fuzz default is 100M
    config.exec = opts.exec;
    config.logEach = opts.verbose;

    const fuzz::FuzzReport report = fuzz::runFuzz(config, std::cout);
    return report.ok() ? 0 : 1;
}

int
dispatch(const Options &opts)
{
    // The whole command gets a root span, so every export shows the
    // total next to the phases it decomposes into.
    prof::Span span("command:" + opts.command, "cli");
    if (opts.command == "compile")
        return cmdCompile(opts);
    if (opts.command == "disasm")
        return cmdDisasm(opts);
    if (opts.command == "run")
        return cmdRun(opts);
    if (opts.command == "analyze")
        return cmdAnalyze(opts);
    if (opts.command == "bench")
        return cmdBench(opts);
    if (opts.command == "record")
        return cmdRecord(opts);
    if (opts.command == "fuzz")
        return cmdFuzz(opts);
    if (opts.command == "serve")
        return cmdServe(opts);
    if (opts.command == "version")
        return cmdVersion(opts);
    usage();
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        const Options opts = parseArgs(argc, argv);
        if (!opts.profileJsonFile.empty() ||
            parse::envFlag("IREP_PROF")) {
            prof::enable();
        }
        const int rc = dispatch(opts);
        if (!opts.profileJsonFile.empty())
            prof::writeTraceJson(opts.profileJsonFile);
        return rc;
    } catch (const FatalError &e) {
        std::fprintf(stderr, "irep: error: %s\n", e.what());
        return 1;
    } catch (const PanicError &e) {
        std::fprintf(stderr, "irep: internal error: %s\n", e.what());
        return 1;
    }
}
