/**
 * @file
 * The `irep --help` text, in its own translation unit so the golden
 * help test (tests/tools/test_cli_help.cc) can link it and diff it
 * against the committed copy — keeping docs/cli.md, the golden file,
 * and the binary from drifting apart.
 */

#ifndef IREP_TOOLS_USAGE_HH
#define IREP_TOOLS_USAGE_HH

namespace irep::cli
{

extern const char *const usageText;

} // namespace irep::cli

#endif // IREP_TOOLS_USAGE_HH
